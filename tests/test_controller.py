"""Unit tests for the ReVive directory-controller extension (Table 1)."""

import pytest

from conftest import build_tiny_machine


@pytest.fixture
def machine():
    return build_tiny_machine()


def mapped_line(machine, node=1, offset=0, value=0):
    vaddr = (node + 1) * (1 << 30) + offset
    line = machine.addr_space.translate_line(vaddr, node)
    if value:
        # Pre-set content through the parity-consistent path.
        machine.nodes[node].memory.write_line(line, value)
        machine.revive.parity.apply_update(line, 0, value)
    return line


class TestStoreIntent:
    def test_first_intent_logs_the_preimage(self, machine):
        line = mapped_line(machine, value=77)
        busy = machine.revive.on_store_intent(1, line, at=100)
        assert busy > 100
        log = machine.revive.logs[1]
        assert log.is_logged(line)
        entries = log.decode_region(machine.nodes[1].memory.read_line)
        assert entries[-1].addr == line
        assert entries[-1].value == 77

    def test_second_intent_is_free(self, machine):
        line = mapped_line(machine)
        machine.revive.on_store_intent(1, line, at=100)
        appends_before = machine.revive.logs[1].appends
        busy = machine.revive.on_store_intent(1, line, at=200)
        assert busy == 200
        assert machine.revive.logs[1].appends == appends_before

    def test_table1_costs_fig5a(self, machine):
        line = mapped_line(machine)
        machine.revive.on_store_intent(1, line, at=0)
        s = machine.stats
        assert s.value("revive.rdx_unlogged.events") == 1
        assert s.value("revive.rdx_unlogged.extra_accesses") == 4
        assert s.value("revive.rdx_unlogged.extra_lines") == 2
        assert s.value("revive.rdx_unlogged.extra_messages") == 2


class TestMemoryWrite:
    def test_logged_write_is_fig4(self, machine):
        line = mapped_line(machine, value=5)
        machine.revive.on_store_intent(1, line, at=0)
        ack, busy = machine.revive.on_memory_write(1, line, 42, at=1000,
                                                   category="ExeWB")
        assert machine.nodes[1].memory.read_line(line) == 42
        assert busy >= ack > 1000
        s = machine.stats
        assert s.value("revive.wb_logged.events") == 1
        assert s.value("revive.wb_logged.extra_accesses") == 3
        assert s.value("revive.wb_logged.extra_lines") == 1
        assert s.value("revive.wb_logged.extra_messages") == 2

    def test_unlogged_write_is_fig5b(self, machine):
        line = mapped_line(machine, value=5)
        ack, busy = machine.revive.on_memory_write(1, line, 42, at=1000,
                                                   category="ExeWB")
        assert machine.nodes[1].memory.read_line(line) == 42
        log = machine.revive.logs[1]
        assert log.is_logged(line)
        entries = log.decode_region(machine.nodes[1].memory.read_line)
        assert entries[-1].value == 5      # pre-image captured
        s = machine.stats
        assert s.value("revive.wb_unlogged.events") == 1
        assert s.value("revive.wb_unlogged.extra_accesses") == 8
        assert s.value("revive.wb_unlogged.extra_lines") == 3
        assert s.value("revive.wb_unlogged.extra_messages") == 4

    def test_write_keeps_parity_exact(self, machine):
        line = mapped_line(machine, value=5)
        machine.revive.on_memory_write(1, line, 42, at=0, category="ExeWB")
        assert machine.revive.parity.check_all_parity() == []

    def test_unlogged_ack_is_delayed_beyond_logged(self, machine):
        """Figure 5(b) delays the write-back ack until the log is safe."""
        line_a = mapped_line(machine, offset=0)
        line_b = mapped_line(machine, offset=4096 * 3)
        machine.revive.on_store_intent(1, line_a, at=0)
        ack_logged, _ = machine.revive.on_memory_write(
            1, line_a, 1, at=10_000, category="ExeWB")
        ack_unlogged, _ = machine.revive.on_memory_write(
            1, line_b, 1, at=10_000, category="ExeWB")
        assert ack_unlogged - 10_000 > ack_logged - 10_000


class TestCommitSupport:
    def test_commit_record_append(self, machine):
        log = machine.revive.logs[2]
        log.advance_epoch()
        done = machine.revive.append_commit_record(2, at=500)
        assert done > 500
        records = log.find_commit_records(machine.nodes[2].memory.read_line)
        assert len(records) == 1 and records[0].value == 1

    def test_on_checkpoint_committed_clears_and_reclaims(self, machine):
        line = mapped_line(machine)
        machine.revive.on_store_intent(1, line, at=0)
        log = machine.revive.logs[1]
        assert log.is_logged(line)
        # Advance two epochs so the first becomes reclaimable
        # (keep_checkpoints = 2).
        log.advance_epoch()
        log.advance_epoch()
        machine.revive.on_checkpoint_committed()
        assert not log.is_logged(line)
        assert log.tail == log.epoch_start[1]

    def test_log_byte_accounting(self, machine):
        line = mapped_line(machine, value=1)
        machine.revive.on_store_intent(1, line, at=0)
        assert machine.revive.total_log_bytes() > 0
        assert machine.revive.max_log_bytes() > 0


class TestMetadataFlush:
    def test_flush_once_per_block(self, machine):
        from repro.core.log import ENTRIES_PER_BLOCK

        for i in range(ENTRIES_PER_BLOCK):
            line = mapped_line(machine, offset=i * 64)
            machine.revive.on_store_intent(1, line, at=i * 1000)
        assert machine.stats.value("revive.metaflush.events") == 1
