"""Tests for repro.harness.campaign: fork-based fault campaigns.

The campaign's contract: forked scenarios (restored from one warm
image) produce *exactly* the outcomes of cold per-scenario replays;
warm images are content-addressed in the result store and reused
across campaigns; and the runner narrates itself through catalogued
``snap.*`` events.
"""

from __future__ import annotations

import asyncio

import pytest

from repro.harness.campaign import (
    CampaignResult,
    campaign_scenarios,
    run_campaign,
    warm_machine,
)
from repro.harness.runner import tiny_revive_overrides
from repro.machine.config import MachineConfig
from repro.obs.lint import lint_events
from repro.obs.tracer import RingBufferSink, Tracer

RUN_KWARGS = dict(scale=0.05, n_procs=4, interval_ns=50_000,
                  machine_config=MachineConfig.tiny(4),
                  **tiny_revive_overrides(4))
GRID = dict(warm_checkpoints=2, lost_nodes=(None, 1),
            detect_fractions=(0.2, 0.8))


class TestScenarioGrid:
    def test_canonical_order_is_hybrid_lost_detect(self):
        grid = campaign_scenarios(lost_nodes=(None, 1),
                                  detect_fractions=(0.2, 0.8),
                                  hybrid_fractions=(None, 0.25))
        assert [(s["hybrid_fraction"], s["lost_node"],
                 s["detect_fraction"]) for s in grid] == [
            (None, None, 0.2), (None, None, 0.8),
            (None, 1, 0.2), (None, 1, 0.8),
            (0.25, None, 0.2), (0.25, None, 0.8),
            (0.25, 1, 0.2), (0.25, 1, 0.8)]


class TestWarmMachine:
    def test_warms_to_the_requested_commit(self):
        machine = warm_machine("fft", "cp_parity", RUN_KWARGS, 2)
        assert machine.checkpointing.checkpoints_committed >= 2
        assert not machine.all_finished

    def test_checkpoint_free_variant_is_rejected(self):
        with pytest.raises(ValueError, match="checkpoint"):
            warm_machine("fft", "baseline", RUN_KWARGS, 2)

    def test_too_short_run_is_reported(self):
        kwargs = dict(RUN_KWARGS, scale=0.05)
        with pytest.raises(RuntimeError, match="checkpoints"):
            warm_machine("fft", "cp_parity", kwargs, 50)


class TestForkedEqualsCold:
    def test_forked_outcomes_equal_cold_outcomes(self):
        forked = run_campaign("fft", "cp_parity", serial=True,
                              **RUN_KWARGS, **GRID)
        cold = run_campaign("fft", "cp_parity", serial=True, cold=True,
                            **RUN_KWARGS, **GRID)
        assert forked.outcomes == cold.outcomes
        assert len(forked.outcomes) == 4
        assert cold.cold and not forked.cold

    def test_outcomes_carry_the_recovery_measurements(self):
        campaign = run_campaign("fft", "cp_parity", serial=True,
                                **RUN_KWARGS, **GRID)
        for outcome in campaign.outcomes:
            assert outcome["target_epoch"] == 1
            assert outcome["unavailable_ns"] > 0
            assert set(outcome["breakdown"]) == {
                "lost_work", "hw_recovery", "log_rebuild", "rollback"}
        # Longer detection latency loses more work.
        by_detect = {(o["lost_node"], o["detect_fraction"]):
                     o["lost_work_ns"] for o in campaign.outcomes}
        assert by_detect[(1, 0.8)] > by_detect[(1, 0.2)]

    def test_parallel_grid_matches_serial(self):
        parallel = run_campaign("fft", "cp_parity", workers=2,
                                **RUN_KWARGS, **GRID)
        serial = run_campaign("fft", "cp_parity", serial=True,
                              **RUN_KWARGS, **GRID)
        assert parallel.outcomes == serial.outcomes


class TestCampaignProfiles:
    def test_profiling_never_perturbs_outcomes(self):
        plain = run_campaign("fft", "cp_parity", serial=True,
                             **RUN_KWARGS, **GRID)
        profiled = run_campaign("fft", "cp_parity", serial=True,
                                profile=True, **RUN_KWARGS, **GRID)
        cold = run_campaign("fft", "cp_parity", serial=True, cold=True,
                            profile=True, **RUN_KWARGS, **GRID)
        # The cold-vs-forked equality contract survives profiling, and
        # the profile rides beside the outcomes, never inside them.
        assert profiled.outcomes == plain.outcomes
        assert cold.outcomes == plain.outcomes
        assert plain.profile is None
        assert "profile" not in plain.outcomes[0]

    def test_merged_profile_covers_every_scenario(self):
        campaign = run_campaign("fft", "cp_parity", serial=True,
                                profile=True, **RUN_KWARGS, **GRID)
        profile = campaign.profile
        assert profile is not None
        assert profile["jobs"] == len(campaign.outcomes) == 4
        assert profile["total_wall_seconds"] > 0
        assert profile["events"] > 0
        # Fork restores never double-count: each scenario profiles
        # only its own detect/fault/recover tail, so per-actor
        # attribution stays within the merged run wall.
        attributed = sum(a["seconds"]
                         for a in profile["actors"].values())
        assert 0 < attributed <= profile["total_wall_seconds"] * (1 + 1e-6)
        assert campaign.to_jsonable()["profile"] == profile

    def test_parallel_profile_merges_in_scenario_order(self):
        parallel = run_campaign("fft", "cp_parity", workers=2,
                                profile=True, **RUN_KWARGS, **GRID)
        assert parallel.outcomes == run_campaign(
            "fft", "cp_parity", serial=True, **RUN_KWARGS,
            **GRID).outcomes
        profile = parallel.profile
        assert profile is not None and profile["jobs"] == 4
        # Deterministic merge: maps come back key-sorted regardless of
        # worker completion order.
        assert list(profile["actors"]) == sorted(profile["actors"],
                                                 key=int)


class TestWarmImageStore:
    def test_miss_then_hit_roundtrip(self, tmp_path):
        store = str(tmp_path / "store")
        first = run_campaign("fft", "cp_parity", serial=True,
                             cache_dir=store, **RUN_KWARGS, **GRID)
        assert [image["cached"] for image in first.images] == [False]
        again = run_campaign("fft", "cp_parity", serial=True,
                             cache_dir=store, **RUN_KWARGS, **GRID)
        assert [image["cached"] for image in again.images] == [True]
        assert again.outcomes == first.outcomes
        assert again.images[0]["key"] == first.images[0]["key"]

    def test_different_warm_depth_is_a_different_image(self, tmp_path):
        store = str(tmp_path / "store")
        two = run_campaign("fft", "cp_parity", serial=True,
                           cache_dir=store, **RUN_KWARGS, **GRID)
        three = run_campaign("fft", "cp_parity", serial=True,
                             cache_dir=store, **RUN_KWARGS,
                             warm_checkpoints=3,
                             lost_nodes=(1,), detect_fractions=(0.5,))
        assert two.images[0]["key"] != three.images[0]["key"]
        assert not three.images[0]["cached"]

    def test_snap_events_narrate_the_campaign(self, tmp_path):
        store = str(tmp_path / "store")
        sink = RingBufferSink()
        run_campaign("fft", "cp_parity", serial=True, cache_dir=store,
                     tracer=Tracer(sink), **RUN_KWARGS, **GRID)
        names = [event["name"] for event in sink.events()]
        assert names == ["snap.capture", "snap.fork"]
        assert lint_events(sink.events()) == []
        capture, fork = sink.events()
        assert capture["bytes"] > 0 and capture["epoch"] == 2
        assert fork["scenarios"] == 4

        sink2 = RingBufferSink()
        run_campaign("fft", "cp_parity", serial=True, cache_dir=store,
                     tracer=Tracer(sink2), **RUN_KWARGS, **GRID)
        names2 = [event["name"] for event in sink2.events()]
        assert names2 == ["snap.restore", "snap.fork"]
        assert lint_events(sink2.events()) == []


class TestHybridAxis:
    def test_each_hybrid_fraction_gets_its_own_image(self):
        campaign = run_campaign("fft", "cp_parity", serial=True,
                                hybrid_fractions=(0.0, 0.25),
                                lost_nodes=(1,), detect_fractions=(0.5,),
                                warm_checkpoints=2, **RUN_KWARGS)
        assert [image["hybrid_fraction"] for image in campaign.images] \
            == [0.0, 0.25]
        assert campaign.images[0]["key"] != campaign.images[1]["key"]
        assert len(campaign.outcomes) == 2
        assert campaign.image_bytes == sum(image["bytes"]
                                           for image in campaign.images)


class TestResultShape:
    def test_to_jsonable_is_json_clean(self):
        import json

        campaign = run_campaign("fft", "cp_parity", serial=True,
                                **RUN_KWARGS, warm_checkpoints=2,
                                lost_nodes=(1,), detect_fractions=(0.5,))
        assert isinstance(campaign, CampaignResult)
        round_tripped = json.loads(json.dumps(campaign.to_jsonable()))
        assert round_tripped["outcomes"] == campaign.outcomes

    def test_bad_warm_depth_is_rejected(self):
        with pytest.raises(ValueError, match="warm_checkpoints"):
            run_campaign("fft", "cp_parity", warm_checkpoints=0,
                         **RUN_KWARGS)


class TestServeCampaignOp:
    def _events(self, service, request):
        async def collect():
            return [event async for event in service.events(request)]
        return asyncio.run(collect())

    def test_campaign_request_streams_and_lints(self, tmp_path):
        from repro.serve.service import SimulationService

        service = SimulationService(cache_dir=str(tmp_path / "cache"))
        request = {"op": "campaign", "app": "fft",
                   "variant": "cp_parity", "nodes": 4, "scale": 0.05,
                   "interval_us": 50.0, "warm_checkpoints": 2,
                   "lost_nodes": [None, 1],
                   "detect_fractions": [0.2, 0.8]}
        try:
            events = self._events(service, request)
            names = [event["name"] for event in events]
            assert names == ["svc.accepted", "snap.capture", "snap.fork",
                             "svc.campaign", "svc.done"]
            assert lint_events(events) == []
            outcomes = events[-2]["outcomes"]
            assert len(outcomes) == 4
            assert events[-1]["jobs"] == 4

            again = self._events(service, request)
            assert [e["name"] for e in again] == [
                "svc.accepted", "snap.restore", "snap.fork",
                "svc.campaign", "svc.done"]
            assert again[-2]["outcomes"] == outcomes
            assert again[-1]["cached"] == 1
        finally:
            service.close()

    def test_campaign_rejects_checkpoint_free_variants(self):
        from repro.serve.service import SimulationService

        service = SimulationService()
        try:
            events = self._events(
                service, {"op": "campaign", "app": "fft",
                          "variant": "cpinf_parity"})
            assert events[-1]["name"] == "svc.error"
            assert "checkpointing variant" in events[-1]["error"]
        finally:
            service.close()
