"""Parallel sweep determinism: worker count must not change results.

Every (app, variant) simulation is deterministic given its arguments,
and the executor merges results in canonical job order — so a sweep's
output must be bit-identical whether it runs serially or across any
number of worker processes.  These tests pin that across workers
{1, 2, 4}, including per-app overhead percentages, log bytes, and the
full counter/traffic breakdowns carried by each RunResult.
"""

from dataclasses import asdict

import pytest

from repro.harness.parallel import (
    SweepResult,
    default_workers,
    run_sweep,
    sweep_jobs,
)
from repro.machine.config import MachineConfig

APPS = ["lu"]
VARIANTS = ["baseline", "cp_parity"]
KW = dict(scale=0.05, n_procs=4, machine_config=MachineConfig.tiny(4),
          parity_group_size=3, log_bytes_per_node=64 * 1024)


def _sweep(**overrides) -> SweepResult:
    kwargs = dict(KW)
    kwargs.update(overrides)
    return run_sweep(APPS, VARIANTS, **kwargs)


def _comparable(sweep: SweepResult):
    """Everything that must not depend on the execution strategy."""
    return {key: asdict(result) for key, result in sweep.results.items()}


class TestDeterminism:
    @pytest.fixture(scope="class")
    def serial(self):
        return _sweep(serial=True)

    @pytest.mark.parametrize("workers", [1, 2, 4])
    def test_bit_identical_across_worker_counts(self, serial, workers):
        parallel = _sweep(workers=workers)
        assert _comparable(parallel) == _comparable(serial)
        assert parallel.job_order == serial.job_order

    def test_overhead_rows_identical(self, serial):
        parallel = _sweep(workers=2)
        assert parallel.overhead_rows() == serial.overhead_rows()
        row = serial.overhead_rows()[0]
        assert row["app"] == "lu"
        assert row["baseline_ns"] > 0
        assert row["cp_parity"] > 0          # ReVive costs something

    def test_log_bytes_identical(self, serial):
        parallel = _sweep(workers=4)
        for key in serial.results:
            assert parallel.results[key].max_log_bytes == \
                serial.results[key].max_log_bytes

    def test_chunksize_does_not_change_results(self, serial):
        chunked = _sweep(workers=2, chunksize=2)
        assert _comparable(chunked) == _comparable(serial)


class TestTracedSweepDeterminism:
    """Traced sweeps: files and ledgers independent of worker count."""

    def _traced(self, trace_dir, **overrides):
        return _sweep(trace_dir=str(trace_dir), **overrides)

    def test_parallel_files_byte_identical_to_serial(self, tmp_path):
        serial_dir = tmp_path / "serial"
        parallel_dir = tmp_path / "parallel"
        serial = self._traced(serial_dir, serial=True)
        parallel = self._traced(parallel_dir, workers=2)
        names = sorted(p.name for p in serial_dir.iterdir())
        assert names == sorted(p.name for p in parallel_dir.iterdir())
        assert "sweep.ledger.json" in names
        for name in names:
            assert (serial_dir / name).read_bytes() == \
                (parallel_dir / name).read_bytes(), name
        assert parallel.ledgers == serial.ledgers

    def test_traced_results_match_untraced(self, tmp_path):
        # Tracing observes the sweep; it must not change its results.
        untraced = _sweep(serial=True)
        traced = self._traced(tmp_path / "t", serial=True)
        assert _comparable(traced) == _comparable(untraced)

    def test_ledger_layout(self, tmp_path):
        import json

        sweep = self._traced(tmp_path / "t", serial=True)
        assert sweep.trace_dir == str(tmp_path / "t")
        assert [(m["app"], m["variant"]) for m in sweep.ledgers] == \
            sweep.job_order
        for (app, variant), manifest in zip(sweep.job_order, sweep.ledgers):
            result = sweep.results[(app, variant)]
            assert manifest["result"]["execution_time_ns"] == \
                result.execution_time_ns
            assert manifest["result"]["max_log_bytes"] == \
                result.max_log_bytes
            assert manifest["healthy"]
            base = tmp_path / "t" / f"{app}__{variant}"
            assert base.with_suffix(".jsonl").exists()
        merged = json.loads((tmp_path / "t" / "sweep.ledger.json")
                            .read_text())
        assert merged["jobs"] == sweep.ledgers

    def test_category_filter_applies_to_every_job(self, tmp_path):
        import json

        # Short interval: the tiny run must commit checkpoints, else a
        # ckpt-only trace is legitimately empty.
        self._traced(tmp_path / "t", serial=True, interval_ns=25_000,
                     trace_categories=["ckpt"])
        for path in (tmp_path / "t").glob("*__cp_parity.jsonl"):
            events = [json.loads(line)
                      for line in path.read_text().splitlines()]
            assert events
            assert {e["cat"] for e in events} == {"ckpt"}


class TestProfiledSweep:
    """profile=True: host-time attribution rides a side channel and
    never perturbs the sweep's deterministic outputs."""

    def _strip_profiles(self, sweep):
        stripped = {}
        for key, result in sweep.results.items():
            fields = asdict(result)
            fields.pop("profile")
            stripped[key] = fields
        return stripped

    def test_profiled_results_match_unprofiled(self):
        plain = _sweep(serial=True)
        profiled = _sweep(serial=True, profile=True)
        assert self._strip_profiles(profiled) == \
            self._strip_profiles(plain)
        assert plain.profile is None
        assert profiled.profile is not None
        assert profiled.profile["jobs"] == len(profiled.job_order) == 2
        assert profiled.profile["total_wall_seconds"] > 0

    def test_parallel_profile_merges_all_jobs(self):
        parallel = _sweep(workers=2, profile=True)
        assert parallel.profile["jobs"] == len(parallel.job_order)
        # Merged maps come back key-sorted — deterministic for any
        # worker completion order.
        assert list(parallel.profile["actors"]) == \
            sorted(parallel.profile["actors"], key=int)

    def test_profiled_ledger_stays_byte_identical(self, tmp_path):
        import json

        plain_dir = tmp_path / "plain"
        prof_dir = tmp_path / "profiled"
        _sweep(serial=True, trace_dir=str(plain_dir))
        profiled = _sweep(serial=True, profile=True,
                          trace_dir=str(prof_dir))
        # Profiling must never leak wall clock into the ledger: the
        # merged manifest is byte-identical with and without it.  The
        # profile lands in its own side-channel file instead.
        assert (plain_dir / "sweep.ledger.json").read_bytes() == \
            (prof_dir / "sweep.ledger.json").read_bytes()
        side = json.loads((prof_dir / "sweep.profile.json").read_text())
        assert side == profiled.profile
        assert not (plain_dir / "sweep.profile.json").exists()


class TestExecutor:
    def test_job_order_is_app_major(self):
        jobs = sweep_jobs(["fft", "lu"], ["baseline", "cp_parity"])
        assert [(a, v) for a, v, _ in jobs] == [
            ("fft", "baseline"), ("fft", "cp_parity"),
            ("lu", "baseline"), ("lu", "cp_parity")]

    def test_revive_overrides_skip_baseline(self):
        jobs = sweep_jobs(["lu"], ["baseline", "cp_parity"],
                          parity_group_size=3)
        kwargs = {v: kw for _a, v, kw in jobs}
        assert "parity_group_size" not in kwargs["baseline"]
        assert kwargs["cp_parity"]["parity_group_size"] == 3

    def test_unknown_variant_rejected(self):
        with pytest.raises(ValueError, match="unknown variants"):
            sweep_jobs(["lu"], ["warp_drive"])

    def test_bad_knobs_rejected(self):
        with pytest.raises(ValueError):
            run_sweep(APPS, VARIANTS, chunksize=0, **KW)
        with pytest.raises(ValueError):
            run_sweep(APPS, VARIANTS, workers=0, **KW)

    def test_serial_flag_reported(self):
        sweep = _sweep(serial=True)
        assert sweep.parallel is False
        assert sweep.workers == 1

    def test_parallel_flag_reported(self):
        sweep = _sweep(workers=2)
        assert sweep.parallel is True
        assert sweep.workers == 2

    def test_default_workers_bounds(self):
        assert default_workers(0) == 1
        assert 1 <= default_workers(100) <= 100

    def test_to_jsonable_round_trips(self, tmp_path):
        import json

        sweep = _sweep(serial=True)
        blob = json.dumps(sweep.to_jsonable())
        loaded = json.loads(blob)
        assert loaded["workers"] == 1
        assert len(loaded["results"]) == len(sweep.job_order)
        assert loaded["results"][0]["app"] == "lu"
