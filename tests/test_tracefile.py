"""Tests for trace recording and replay."""

import numpy as np
import pytest

from repro.harness.runner import build_machine
from repro.machine.config import MachineConfig
from repro.workloads.registry import get_workload
from repro.workloads.tracefile import TraceWorkload, record_trace


@pytest.fixture
def small_workload():
    return get_workload("lu", scale=0.05, n_procs=4)


class TestRoundtrip:
    def test_record_and_replay_identical(self, small_workload, tmp_path):
        path = str(tmp_path / "lu.npz")
        stats = record_trace(small_workload, path)
        assert stats["n_procs"] == 4
        assert stats["total_refs"] > 0

        replay = TraceWorkload(path)
        assert replay.name == "lu"
        assert replay.n_procs == 4
        for proc in range(4):
            original = list(small_workload.stream_for(proc))
            replayed = list(replay.stream_for(proc))
            assert len(original) == len(replayed)
            for a, b in zip(original, replayed):
                assert a[0] == b[0]
                if a[0] == "ops":
                    assert np.array_equal(np.asarray(a[2]),
                                          np.asarray(b[2]))
                    assert np.array_equal(np.asarray(a[1]),
                                          np.asarray(b[1]))
                    assert np.array_equal(np.asarray(a[3]),
                                          np.asarray(b[3]))

    def test_replay_drives_the_machine_identically(self, small_workload,
                                                   tmp_path):
        path = str(tmp_path / "lu.npz")
        record_trace(small_workload, path)

        cfg = MachineConfig.tiny(4)
        m1 = build_machine("baseline", machine_config=cfg)
        m1.attach_workload(get_workload("lu", scale=0.05, n_procs=4))
        m1.run()
        m2 = build_machine("baseline", machine_config=cfg)
        m2.attach_workload(TraceWorkload(path))
        m2.run()
        assert m1.execution_time == m2.execution_time
        assert m1.total_mem_refs() == m2.total_mem_refs()

    def test_invalid_processor(self, small_workload, tmp_path):
        path = str(tmp_path / "lu.npz")
        record_trace(small_workload, path)
        with pytest.raises(ValueError):
            TraceWorkload(path).stream_for(9)

    def test_total_refs_hint(self, small_workload, tmp_path):
        path = str(tmp_path / "lu.npz")
        stats = record_trace(small_workload, path)
        assert TraceWorkload(path).total_refs_hint() \
            == stats["total_refs"]
