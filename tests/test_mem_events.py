"""Tests for the fast path's ``mem`` trace category.

``mem.batch`` events are emitted at compiled-batch flush boundaries
and must reconcile exactly with the per-node cache counters and
per-processor reference counts — closing the observability blindspot
without costing untraced runs anything.  Also pins the
``Machine.install_tracer`` / compiled-closure interaction: installing
a tracer mid-run must invalidate every processor's stale batch
closure so the new tracer's hooks take effect.
"""

from __future__ import annotations

import pytest

from repro.cpu.processor import FASTPATH_DEFAULT
from repro.obs import RingBufferSink, Tracer, lint_events
from tests.conftest import ToyWorkload, build_tiny_machine

fastpath_only = pytest.mark.skipif(
    not FASTPATH_DEFAULT,
    reason="mem.batch events come from the compiled fast path "
           "(REPRO_FASTPATH=0 disables it)")


def traced_toy_run(categories=None, fastpath=True, rounds=2):
    sink = RingBufferSink(capacity=1 << 20)
    machine = build_tiny_machine()
    machine.install_tracer(Tracer(sink, categories=categories))
    machine.attach_workload(ToyWorkload(rounds=rounds))
    if not fastpath:               # processors exist once attached
        for proc in machine.processors:
            proc.fastpath = False
    machine.run()
    return machine, sink.events()


def mem_batches(events):
    return [e for e in events if e["name"] == "mem.batch"]


def split_at_warmup(events):
    """Events strictly after the ``sim.warmup_done`` marker."""
    marker = [e["seq"] for e in events if e["name"] == "sim.warmup_done"]
    assert len(marker) == 1
    return [e for e in events if e["seq"] > marker[0]]


class TestMemBatchEvents:
    @fastpath_only
    def test_batches_present_and_schema_clean(self):
        _machine, events = traced_toy_run()
        batches = mem_batches(events)
        assert batches
        assert all(e["cat"] == "mem" for e in batches)
        assert lint_events(events) == []

    @fastpath_only
    def test_post_warmup_sums_match_counters_bit_for_bit(self):
        machine, events = traced_toy_run()
        steady = mem_batches(split_at_warmup(events))
        assert steady

        def total(node, field):
            return sum(e[field] for e in steady if e["node"] == node)

        for node_id, node in enumerate(machine.nodes):
            assert total(node_id, "l1_hits") == node.hierarchy.l1.hits
            assert total(node_id, "l1_misses") == node.hierarchy.l1.misses
            assert total(node_id, "l2_hits") == node.hierarchy.l2.hits
            assert total(node_id, "l2_misses") == node.hierarchy.l2.misses
        for proc in machine.processors:
            assert total(proc.node_id, "refs") == proc.mem_refs
        assert sum(e["refs"] for e in steady) == machine.total_mem_refs()

    @fastpath_only
    def test_remote_counts_are_bounded_and_present(self):
        _machine, events = traced_toy_run()
        batches = mem_batches(events)
        for event in batches:
            assert 0 <= event["remote"] <= event["refs"]
        # The shared region guarantees some remotely-homed misses.
        assert sum(e["remote"] for e in batches) > 0

    def test_reference_loop_emits_no_mem_events(self):
        _machine, events = traced_toy_run(fastpath=False)
        assert mem_batches(events) == []
        assert events                       # other categories still flow

    def test_category_filter_excludes_mem(self):
        _machine, events = traced_toy_run(categories={"ckpt", "log"})
        assert mem_batches(events) == []
        assert {e["cat"] for e in events} <= {"ckpt", "log"}


class TestInstallTracerRebindsFastpath:
    """Satellite regression: no stale compiled closures after install."""

    def test_invalidate_fastpath_drops_compiled_batch_fn(self):
        machine = build_tiny_machine()
        machine.attach_workload(ToyWorkload())
        proc = machine.processors[0]
        proc._batch_fn = object()           # stand-in for a compiled body
        proc.invalidate_fastpath()
        assert proc._batch_fn is None

    @fastpath_only
    def test_tracer_installed_mid_run_reaches_fast_path(self):
        machine = build_tiny_machine()
        machine.attach_workload(ToyWorkload(rounds=3))
        machine.run(until=5_000)            # compile untraced closures
        assert not machine.all_finished
        assert any(p._batch_fn is not None or p._columnar_fn is not None
                   for p in machine.processors)

        sink = RingBufferSink(capacity=1 << 20)
        machine.install_tracer(Tracer(sink))
        assert all(p._batch_fn is None and p._columnar_fn is None
                   for p in machine.processors)

        machine.run()
        assert mem_batches(sink.events())   # new closure carries the hook

    @fastpath_only
    def test_mid_run_tracer_matches_from_start_counters(self):
        # The rebound closure must keep simulating identically: final
        # machine state equals an identically-configured untraced run.
        untraced = build_tiny_machine()
        untraced.attach_workload(ToyWorkload(rounds=3))
        untraced.run()

        traced = build_tiny_machine()
        traced.attach_workload(ToyWorkload(rounds=3))
        traced.run(until=5_000)
        traced.install_tracer(Tracer(RingBufferSink(capacity=1 << 20)))
        traced.run()

        assert traced.execution_time == untraced.execution_time
        assert traced.total_mem_refs() == untraced.total_mem_refs()
        for a, b in zip(traced.nodes, untraced.nodes):
            assert (a.hierarchy.l1.hits, a.hierarchy.l1.misses,
                    a.hierarchy.l2.hits, a.hierarchy.l2.misses) == \
                   (b.hierarchy.l1.hits, b.hierarchy.l1.misses,
                    b.hierarchy.l2.hits, b.hierarchy.l2.misses)


class TestZeroCostWhenOffMemHooks:
    """TestZeroCostWhenOff-style pins for the new mem hooks."""

    def test_untraced_run_emits_zero_events_with_mem_hooks(self):
        machine = build_tiny_machine()
        machine.attach_workload(ToyWorkload(rounds=1, refs_per_round=500))
        machine.run()
        assert machine.tracer.events_emitted == 0

    @fastpath_only
    def test_untraced_and_traced_runs_agree_on_counters(self):
        plain = build_tiny_machine()
        plain.attach_workload(ToyWorkload(rounds=2))
        plain.run()

        traced, _events = traced_toy_run()
        assert traced.execution_time == plain.execution_time
        assert traced.total_mem_refs() == plain.total_mem_refs()
