"""The async simulation service (repro.serve).

Pins the request lifecycle documented in docs/SERVING.md: validation
failures stream ``svc.error``; a repeated request is served from the
result store with a manifest byte-identical to the fresh run's ledger
file (the acceptance oracle); requests racing on the same cell
coalesce onto one in-flight computation; the event stream passes the
trace linter; and the JSONL TCP transport round-trips through the
blocking client.

The tests pin the service to the asyncio loop's thread executor
(``_executor_broken``) so they never pay process-pool spawn time; the
process-pool path is exercised end-to-end by ``tools/smoke.py``.
"""

import asyncio
import json

import pytest

from repro.harness.parallel import run_sweep
from repro.harness.store import TRACE_ARTIFACT, manifest_bytes
from repro.machine.config import MachineConfig
from repro.obs.lint import lint_events
from repro.serve import (
    ServiceError,
    SimulationService,
    bound_port,
    fetch_metrics,
    request_key,
    start_server,
    submit,
)
from repro.serve.service import _normalise

RUN_REQUEST = {"op": "run", "app": "lu", "variant": "cp_parity",
               "nodes": 4, "scale": 0.05, "interval_us": 50}


def make_service(tmp_path, **kwargs) -> SimulationService:
    service = SimulationService(cache_dir=str(tmp_path / "cache"), **kwargs)
    # Deterministically use the loop's thread executor: no spawn cost.
    service._executor_broken = True
    return service


def collect(service, request):
    async def go():
        return [event async for event in service.events(request)]
    return asyncio.run(go())


def names(events):
    return [event["name"] for event in events]


class TestValidation:
    @pytest.mark.parametrize("request_dict,fragment", [
        (["not", "a", "dict"], "JSON object"),
        ({"op": "frobnicate", "app": "lu"}, "unknown op"),
        ({"op": "run"}, "exactly one app"),
        ({"op": "run", "app": "nosuchapp"}, "unknown apps"),
        ({"op": "run", "app": "lu", "variant": "nosuch"},
         "unknown variants"),
        ({"op": "sweep", "apps": []}, "non-empty 'apps'"),
        ({"op": "report", "apps": ["lu"], "variants": ["cp_parity"]},
         "baseline"),
        ({"op": "run", "app": "lu", "nodes": 5}, "nodes"),
        ({"op": "run", "app": "lu", "scale": -1}, "scale"),
        ({"op": "run", "app": "lu", "interval_us": 0}, "interval_us"),
    ])
    def test_rejections_stream_svc_error(self, tmp_path, request_dict,
                                         fragment):
        service = make_service(tmp_path)
        events = collect(service, request_dict)
        assert names(events) == ["svc.error"]
        assert fragment in events[0]["error"]

    def test_normalise_defaults(self):
        req = _normalise({"op": "run", "app": "lu"})
        assert req["variants"] == ["cp_parity"]
        assert req["scale"] == 0.1
        assert req["nodes"] is None
        assert not req["no_cache"]
        with pytest.raises(ServiceError):
            _normalise({"op": "latency"})

    def test_request_key_is_canonical(self):
        one = _normalise({"op": "run", "app": "lu", "scale": 0.1})
        two = _normalise({"scale": 0.1, "app": "lu", "op": "run"})
        assert request_key(one) == request_key(two)


class TestCachePath:
    @pytest.fixture(scope="class")
    def served(self, tmp_path_factory):
        """The same run request twice: a miss stream, then a hit stream."""
        tmp_path = tmp_path_factory.mktemp("serve")
        service = make_service(tmp_path)
        first = collect(service, RUN_REQUEST)
        second = collect(service, RUN_REQUEST)
        return service, first, second

    def test_miss_then_hit(self, served):
        _, first, second = served
        assert names(first) == ["svc.accepted", "svc.cache_miss",
                                "svc.scheduled", "svc.verdicts",
                                "svc.latency", "svc.result",
                                "svc.timing", "svc.done"]
        assert names(second) == ["svc.accepted", "svc.cache_hit",
                                 "svc.verdicts", "svc.latency",
                                 "svc.result", "svc.timing", "svc.done"]
        assert first[-1]["cached"] == 0
        assert second[-1]["cached"] == 1

    def test_timing_attributes_request_host_time(self, served):
        _, first, second = served
        miss = next(e for e in first if e["name"] == "svc.timing")
        hit = next(e for e in second if e["name"] == "svc.timing")
        for timing in (miss, hit):
            assert set(timing["phases"]) == {"cache_lookup_ms",
                                             "queue_wait_ms",
                                             "execute_ms", "total_ms"}
            assert timing["phases"]["total_ms"] > 0
        # The miss paid for a real simulation; the hit ran nothing.
        assert miss["phases"]["execute_ms"] > 0
        assert hit["phases"]["execute_ms"] == 0

    def test_cached_result_identical(self, served):
        _, first, second = served
        fresh = next(e for e in first if e["name"] == "svc.result")
        cached = next(e for e in second if e["name"] == "svc.result")
        assert not fresh["cached"] and cached["cached"]
        assert fresh["result"] == cached["result"]
        fresh_v = next(e for e in first if e["name"] == "svc.verdicts")
        cached_v = next(e for e in second if e["name"] == "svc.verdicts")
        assert fresh_v["verdicts"] == cached_v["verdicts"]

    def test_cached_manifest_byte_identical_to_fresh_ledger(
            self, served, tmp_path):
        """Acceptance oracle: cached bytes == a fresh run's ledger file."""
        service, first, _ = served
        jkey = next(e for e in first
                    if e["name"] == "svc.cache_miss")["key"]
        entry = service.store.get(jkey)
        assert entry is not None
        # The same cell, fresh, through the traced sweep path.
        trace_dir = str(tmp_path / "fresh")
        run_sweep(["lu"], ["cp_parity"], serial=True, scale=0.05,
                  n_procs=4, interval_ns=50_000,
                  machine_config=MachineConfig.tiny(4),
                  parity_group_size=3, log_bytes_per_node=64 * 1024,
                  trace_dir=trace_dir)
        with open(f"{trace_dir}/lu__cp_parity.ledger.json", "rb") as handle:
            fresh_ledger = handle.read()
        with open(f"{trace_dir}/lu__cp_parity.jsonl", "rb") as handle:
            fresh_trace = handle.read()
        assert manifest_bytes(entry.payload["manifest"]) == fresh_ledger
        assert entry.read_artifact(TRACE_ARTIFACT) == fresh_trace

    def test_streams_pass_trace_lint(self, served):
        _, first, second = served
        assert lint_events(first) == []
        assert lint_events(second) == []

    def test_cache_health_monitor_observed_the_traffic(self, served):
        service, _, _ = served
        verdict = service.health.verdicts()["cache_health"]
        assert verdict["healthy"]
        assert verdict["hits"] >= 1
        assert verdict["misses"] >= 1
        assert verdict["stores"] >= 1
        assert verdict["corruptions"] == 0

    def test_no_cache_request_skips_the_store(self, tmp_path):
        service = make_service(tmp_path)
        request = dict(RUN_REQUEST, no_cache=True)
        events = collect(service, request)
        assert "svc.cache_miss" in names(events)
        assert service.store.stores == 0
        # And a second no_cache request recomputes again.
        events = collect(service, request)
        assert "svc.cache_hit" not in names(events)


class TestOps:
    def test_latency_op_streams_classes(self, tmp_path):
        service = make_service(tmp_path)
        events = collect(service, dict(RUN_REQUEST, op="latency"))
        latency = next(e for e in events if e["name"] == "svc.latency")
        assert latency["classes"]          # non-empty span classes
        for stats in latency["classes"].values():
            assert set(stats) >= {"count", "p50", "p99"}

    def test_report_op_streams_overhead_rows(self, tmp_path):
        service = make_service(tmp_path)
        request = {"op": "report", "apps": ["lu"], "nodes": 4,
                   "scale": 0.05, "interval_us": 50}
        events = collect(service, request)
        assert lint_events(events) == []
        report = next(e for e in events if e["name"] == "svc.report")
        assert len(report["rows"]) == 1
        row = report["rows"][0]
        assert row["app"] == "lu"
        assert row["baseline_ns"] > 0
        assert row["cp_parity"] > 0        # ReVive costs something
        done = events[-1]
        assert done["name"] == "svc.done"
        assert done["jobs"] == 2           # baseline + cp_parity cells


class TestStats:
    def test_stats_op_streams_heartbeat_and_snapshot(self, tmp_path):
        service = make_service(tmp_path)
        collect(service, RUN_REQUEST)           # generate some traffic
        events = collect(service, {"op": "stats"})
        assert names(events) == ["svc.accepted", "stats.heartbeat",
                                 "stats.snapshot", "svc.done"]
        assert lint_events(events) == []
        beat = next(e for e in events if e["name"] == "stats.heartbeat")
        assert beat["workers"] == service.workers
        assert beat["inflight"] == 0            # nothing running now
        snapshot = next(e for e in events if e["name"] == "stats.snapshot")
        metrics = snapshot["metrics"]
        assert metrics["counters"]["svc.requests.run"] == 1
        assert metrics["counters"]["svc.cache_misses"] == 1
        assert metrics["gauges"]["svc.workers"]["value"] == service.workers
        assert metrics["histograms"]["svc.execute_us"]["count"] == 1

    def test_heartbeat_beats_stay_monotonic_across_requests(self, tmp_path):
        service = make_service(tmp_path)
        first = collect(service, {"op": "stats"})
        second = collect(service, {"op": "stats"})
        beats1 = [e["beat"] for e in first
                  if e["name"] == "stats.heartbeat"]
        beats2 = [e["beat"] for e in second
                  if e["name"] == "stats.heartbeat"]
        # Strictly increasing within each stream (the lint invariant);
        # the second stream replays the ring, then adds a fresh beat.
        assert beats1 == sorted(set(beats1))
        assert beats2 == sorted(set(beats2))
        assert beats2[-1] > beats1[-1]
        assert lint_events(second) == []
        snap1 = next(e for e in first if e["name"] == "stats.snapshot")
        snap2 = next(e for e in second if e["name"] == "stats.snapshot")
        assert snap2["beat"] > snap1["beat"]

    def test_errors_are_counted(self, tmp_path):
        service = make_service(tmp_path)
        collect(service, {"op": "frobnicate"})
        assert service.metrics.value("svc.errors") == 1


class TestCoalescing:
    def test_concurrent_requests_share_one_computation(self, tmp_path):
        service = make_service(tmp_path)

        async def consume():
            return [event async for event in service.events(RUN_REQUEST)]

        async def go():
            return await asyncio.gather(consume(), consume())

        first, second = asyncio.run(go())
        both = names(first) + names(second)
        assert both.count("svc.scheduled") == 1
        assert both.count("svc.coalesced") == 1
        assert service.store.stores == 1
        one = next(e for e in first if e["name"] == "svc.result")
        two = next(e for e in second if e["name"] == "svc.result")
        assert one["result"] == two["result"]


class TestTransport:
    def test_tcp_round_trip_miss_then_hit(self, tmp_path):
        service = make_service(tmp_path)

        async def go():
            server = await start_server(service, port=0)
            port = bound_port(server)
            loop = asyncio.get_running_loop()

            def call():
                return list(submit(RUN_REQUEST, port=port, timeout=120))

            try:
                first = await loop.run_in_executor(None, call)
                second = await loop.run_in_executor(None, call)
            finally:
                server.close()
                await server.wait_closed()
            return first, second

        first, second = asyncio.run(go())
        assert names(first)[0] == "svc.accepted"
        assert names(first)[-1] == "svc.done"
        assert "svc.cache_miss" in names(first)
        assert "svc.cache_hit" in names(second)
        assert lint_events(first) == []

    def test_get_metrics_serves_prometheus_text(self, tmp_path):
        service = make_service(tmp_path)

        async def go():
            server = await start_server(service, port=0)
            port = bound_port(server)
            loop = asyncio.get_running_loop()

            def call():
                list(submit(RUN_REQUEST, port=port, timeout=120))
                return fetch_metrics(port=port)

            try:
                return await loop.run_in_executor(None, call)
            finally:
                server.close()
                await server.wait_closed()

        body = asyncio.run(go())
        assert body.endswith("\n")
        lines = body.splitlines()
        assert "# TYPE repro_svc_requests_run counter" in lines
        assert "repro_svc_requests_run 1" in lines
        assert f"repro_svc_workers {service.workers}" in lines
        assert any(line.startswith("repro_svc_execute_us_count ")
                   for line in lines)

    def test_get_unknown_path_404s(self, tmp_path):
        import socket

        service = make_service(tmp_path)

        async def go():
            server = await start_server(service, port=0)
            port = bound_port(server)
            loop = asyncio.get_running_loop()

            def call():
                with socket.create_connection(("127.0.0.1", port),
                                              timeout=30) as sock:
                    sock.sendall(b"GET /nope HTTP/1.0\r\n\r\n")
                    chunks = b""
                    while True:
                        chunk = sock.recv(65536)
                        if not chunk:
                            break
                        chunks += chunk
                    return chunks

            try:
                return await loop.run_in_executor(None, call)
            finally:
                server.close()
                await server.wait_closed()

        response = asyncio.run(go())
        assert response.startswith(b"HTTP/1.0 404 ")
        assert b"GET /metrics" in response

    def test_malformed_request_line_streams_svc_error(self, tmp_path):
        import socket

        service = make_service(tmp_path)

        async def go():
            server = await start_server(service, port=0)
            port = bound_port(server)
            loop = asyncio.get_running_loop()

            def call():
                with socket.create_connection(("127.0.0.1", port),
                                              timeout=30) as sock:
                    sock.sendall(b"this is not json\n")
                    stream = sock.makefile("rb")
                    return [json.loads(line) for line in stream]

            try:
                return await loop.run_in_executor(None, call)
            finally:
                server.close()
                await server.wait_closed()

        events = asyncio.run(go())
        assert names(events) == ["svc.error"]
        assert "malformed JSON" in events[0]["error"]
