"""Transaction-level causal spans: closure, reconciliation, zero cost.

The two tentpole invariants of ``repro.obs.spans`` are pinned here on
*live* simulations, not synthetic streams:

* segment-sum closure — every span's segment durations sum exactly to
  its duration;
* counter reconciliation — per-class steady-state span counts equal
  the simulator's own transaction counters bit-for-bit.

Plus: the Table 3 network formula recomputed from an isolated read
miss's ``net`` segments, live ``lat.*`` histogram equality with a
trace-recomputed histogram, txn-id determinism, and the zero-cost-off
contract.
"""

from __future__ import annotations

from conftest import ToyWorkload, build_tiny_machine

from repro.obs import (
    NULL_SPANS,
    SEGMENTS,
    SPAN_CLASSES,
    LogHistogram,
    RingBufferSink,
    Tracer,
    span_ends,
    steady_state_span_ends,
)
from repro.obs.spans import SpanRecorder


def run_traced(rounds: int = 2, refs_per_round: int = 1500):
    """One deterministic traced ReVive run; returns (machine, events)."""
    sink = RingBufferSink(capacity=1 << 20)
    machine = build_tiny_machine()
    machine.install_tracer(Tracer(sink))
    machine.attach_workload(ToyWorkload(rounds=rounds,
                                        refs_per_round=refs_per_round))
    machine.run()
    assert sink.dropped == 0
    return machine, sink.events()


class TestSpanPrimitives:
    def make_recorder(self):
        sink = RingBufferSink()
        return SpanRecorder(Tracer(sink)), sink

    def test_cursor_charges_deltas_and_merges_same_kind(self):
        recorder, _sink = self.make_recorder()
        span = recorder.begin("read_miss", 0, 100)
        span.seg("net", 140)
        span.seg("dir", 161)
        span.seg("dir", 180)      # consecutive same kind: merged
        span.seg("net", 170)      # does not move time forward: no-op
        span.seg("mem_read", 240)
        assert span.segs == [["net", 40], ["dir", 40], ["mem_read", 60]]
        assert span.cursor == 240

    def test_end_defaults_to_cursor_guaranteeing_closure(self):
        recorder, sink = self.make_recorder()
        span = recorder.begin("writeback", 2, 50)
        span.seg("net", 90)
        span.seg("mem_write", 150)
        span.end()
        end = sink.events()[-1]
        assert end["name"] == "span.end"
        assert end["ts"] == 150
        assert end["dur_ns"] == 100
        assert sum(d for _k, d in end["segs"]) == end["dur_ns"]

    def test_explicit_end_time_is_honored(self):
        recorder, sink = self.make_recorder()
        span = recorder.begin("ckpt", -1, 0)
        span.seg("mem_write", 30)
        span.end(at=30)
        assert sink.events()[-1]["dur_ns"] == 30

    def test_txn_ids_monotonic_from_zero(self):
        recorder, sink = self.make_recorder()
        for _ in range(3):
            recorder.begin("upgrade", 1, 0).end(at=0)
        begins = [e for e in sink.events() if e["name"] == "span.begin"]
        assert [e["txn"] for e in begins] == [0, 1, 2]

    def test_begin_event_carries_class_node_and_fields(self):
        recorder, sink = self.make_recorder()
        recorder.begin("read_miss", 3, 7, line=0x1240)
        begin = sink.events()[-1]
        assert begin["cat"] == "span"
        assert begin["class"] == "read_miss"
        assert begin["node"] == 3
        assert begin["ts"] == 7
        assert begin["line"] == 0x1240

    def test_closed_span_feeds_latency_histogram(self):
        from repro.obs import MetricsRegistry
        metrics = MetricsRegistry()
        recorder = SpanRecorder(Tracer(RingBufferSink()), metrics=metrics)
        span = recorder.begin("read_miss", 0, 0)
        span.seg("net", 80)
        span.end()
        assert metrics.log_histogram("lat.read_miss").count == 1
        assert metrics.log_histogram("lat.read_miss").max_value == 80

    def test_category_filtered_tracer_disables_recorder(self):
        tracer = Tracer(RingBufferSink(), categories={"ckpt", "recovery"})
        assert SpanRecorder(tracer).enabled is False
        tracer = Tracer(RingBufferSink(), categories={"span"})
        assert SpanRecorder(tracer).enabled is True


class TestZeroCostWhenOff:
    def test_fresh_machine_carries_null_recorder(self):
        machine = build_tiny_machine()
        assert machine.spans is NULL_SPANS
        assert machine.spans.enabled is False

    def test_untraced_run_allocates_no_txn_ids(self):
        machine = build_tiny_machine()
        machine.attach_workload(ToyWorkload(rounds=1, refs_per_round=500))
        machine.run()
        assert machine.spans is NULL_SPANS
        assert NULL_SPANS.next_txn == 0
        assert machine.stats.counter("txn.read_miss").value > 0

    def test_install_tracer_enables_spans(self):
        machine = build_tiny_machine()
        machine.install_tracer(Tracer(RingBufferSink()))
        assert machine.spans is not NULL_SPANS
        assert machine.spans.enabled
        assert machine.spans.metrics is machine.stats


class TestClosureOnLiveRun:
    def test_every_span_pairs_and_closes_exactly(self):
        _machine, events = run_traced()
        begins = {e["txn"]: e for e in events
                  if e.get("name") == "span.begin"}
        ends = span_ends(events)
        assert len(ends) == len(begins) > 0
        for end in ends:
            begin = begins[end["txn"]]
            assert begin["class"] == end["class"]
            assert begin["node"] == end["node"]
            assert end["dur_ns"] == end["ts"] - begin["ts"]
            # The tentpole invariant: exact segment-sum closure.
            assert sum(d for _k, d in end["segs"]) == end["dur_ns"]

    def test_only_cataloged_classes_and_segment_kinds(self):
        _machine, events = run_traced()
        for end in span_ends(events):
            assert end["class"] in SPAN_CLASSES
            for kind, dur in end["segs"]:
                assert kind in SEGMENTS
                assert isinstance(dur, int) and dur > 0


class TestCounterReconciliation:
    COUNTERS = {
        "read_miss": "txn.read_miss",
        "write_miss": "txn.write_miss",
        "upgrade": "txn.upgrade",
        "writeback": "txn.writeback",
        "invalidation": "txn.invalidation",
        "ckpt": "ckpt.count",
        "recovery": "recovery.count",
    }

    def test_steady_state_span_counts_match_counters_bit_for_bit(self):
        machine, events = run_traced()
        by_class = {cls: 0 for cls in SPAN_CLASSES}
        for end in steady_state_span_ends(events):
            by_class[end["class"]] += 1
        for cls, counter in self.COUNTERS.items():
            assert by_class[cls] == machine.stats.counter(counter).value, cls
        # The run must actually exercise the protocol and checkpoints
        # for the equality above to mean anything.
        assert by_class["read_miss"] > 0
        assert by_class["write_miss"] > 0
        assert by_class["writeback"] > 0
        assert by_class["ckpt"] > 0

    def test_replacement_hints_counted_but_never_spanned(self):
        machine, events = run_traced()
        assert machine.stats.counter("txn.hint").value > 0
        spanned = len(steady_state_span_ends(events))
        total_txns = sum(machine.stats.counter(c).value
                         for c in self.COUNTERS.values())
        assert spanned == total_txns  # hints excluded on both sides

    def test_live_latency_histograms_equal_trace_recomputed(self):
        # The live ``lat.*`` histograms are fed span by span as the
        # run executes (including warmup — they are never reset);
        # rebuilding them from all trace span.end events must agree
        # bit-for-bit.
        machine, events = run_traced()
        rebuilt = {}
        for end in span_ends(events):
            rebuilt.setdefault(end["class"],
                               LogHistogram("x")).record(end["dur_ns"])
        assert rebuilt
        for cls, histogram in rebuilt.items():
            live = machine.stats.log_histogram("lat." + cls)
            assert live.summary() == histogram.summary(), cls
            assert live.buckets() == histogram.buckets(), cls


class TestIsolatedReadMissMatchesTable3:
    def test_net_segments_equal_table3_roundtrip(self):
        # A single read miss on an otherwise idle machine decomposes
        # into request net + directory + DRAM read + data net, with
        # both net segments exactly at the uncontended Table 3 flight
        # time (header out, 72-byte line back).
        sink = RingBufferSink()
        machine = build_tiny_machine()
        machine.install_tracer(Tracer(sink))
        proto, config = machine.protocol, machine.config
        addr = next(a for a in range(0, 1 << 20, config.line_size)
                    if machine.geom_cache.home_node(a) != 0)
        home = machine.geom_cache.home_node(addr)
        done = proto.read(0, addr, at=0)

        ends = span_ends(sink.events())
        assert len(ends) == 1
        end = ends[0]
        assert end["class"] == "read_miss"
        assert end["node"] == 0
        assert end["dur_ns"] == done
        by_kind = {}
        for kind, dur in end["segs"]:
            by_kind[kind] = by_kind.get(kind, 0) + dur
        net = machine.network
        assert by_kind["net"] == (
            net.uncontended_latency(0, home, config.header_bytes)
            + net.uncontended_latency(home, 0,
                                      config.line_message_bytes()))
        assert by_kind["dir"] == config.dir_latency_ns
        assert by_kind["mem_read"] == config.mem_row_miss_ns
        assert sum(by_kind.values()) == done


class TestDeterminism:
    def test_identical_runs_emit_identical_span_streams(self):
        _m1, events1 = run_traced()
        _m2, events2 = run_traced()
        spans1 = [e for e in events1 if e.get("cat") == "span"]
        spans2 = [e for e in events2 if e.get("cat") == "span"]
        assert spans1 == spans2
        assert spans1  # non-vacuous
