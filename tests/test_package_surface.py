"""Import-surface checks: subpackage exports stay importable and sane."""

import importlib

import pytest

SUBPACKAGES = [
    "repro.sim",
    "repro.machine",
    "repro.cpu",
    "repro.cache",
    "repro.coherence",
    "repro.memory",
    "repro.network",
    "repro.core",
    "repro.workloads",
    "repro.harness",
    "repro.obs",
]


@pytest.mark.parametrize("name", SUBPACKAGES)
def test_subpackage_exports_resolve(name):
    module = importlib.import_module(name)
    for export in getattr(module, "__all__", []):
        assert getattr(module, export) is not None, f"{name}.{export}"


def test_machine_lazy_getattr_error():
    import repro.machine

    with pytest.raises(AttributeError):
        repro.machine.nonsense


def test_core_exports_cover_the_mechanisms():
    import repro.core as core

    for name in ("ReViveConfig", "ParityEngine", "MemoryLog",
                 "ReViveController", "CheckpointCoordinator",
                 "RecoveryManager", "NodeLossFault", "IOManager"):
        assert name in core.__all__


def test_version_is_consistent():
    import repro

    assert repro.__version__.count(".") == 2
