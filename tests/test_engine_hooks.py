"""Tests for simulator hook / horizon interplay (checkpoint semantics)."""

from repro.sim.engine import Simulator


def endless_actor(period):
    def actor(now):
        return now + period
    return actor


class TestHookHorizon:
    def test_hook_due_within_until_fires_before_break(self):
        """A hook due inside the horizon fires even when the next actor
        event lies beyond it (a checkpoint at the boundary commits)."""
        sim = Simulator()
        fired = []

        def hook(trigger):
            fired.append(trigger)
            return None

        sim.schedule(0, endless_actor(1000))
        sim.set_global_hook(500, hook)
        sim.run(until=600)
        assert fired == [500]

    def test_hook_beyond_until_does_not_fire(self):
        sim = Simulator()
        fired = []

        def hook(trigger):
            fired.append(trigger)
            return None

        sim.schedule(0, endless_actor(100))
        sim.set_global_hook(5_000, hook)
        sim.run(until=1_000)
        assert fired == []
        # Resuming past the trigger fires it.
        sim.run(until=6_000)
        assert fired == [5_000]

    def test_hook_reschedules_itself(self):
        sim = Simulator()
        fired = []

        def hook(trigger):
            fired.append(trigger)
            return trigger + 300

        sim.schedule(0, endless_actor(50))
        sim.set_global_hook(100, hook)
        sim.run(until=1_000)
        assert fired == [100, 400, 700, 1_000]

    def test_hook_never_fires_without_pending_events(self):
        sim = Simulator()
        fired = []
        sim.set_global_hook(10, lambda t: fired.append(t))
        sim.run()
        assert fired == []

    def test_now_advances_through_hooks(self):
        sim = Simulator()

        def actor(now):
            return now + 400 if now < 400 else None

        sim.schedule(0, actor)
        sim.set_global_hook(200, lambda t: None)
        sim.run()
        assert sim.now == 400
