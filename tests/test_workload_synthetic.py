"""Unit tests for the synthetic workload generator."""

import numpy as np
import pytest

from repro.workloads.base import SHARED_BASE, private_base
from repro.workloads.synthetic import SyntheticSpec, SyntheticWorkload


def make_spec(**overrides):
    defaults = dict(name="t", n_procs=4, refs_per_proc=4000, phases=2,
                    hot_lines=32, shared_lines=64, shared_fraction=0.2,
                    seed=3)
    defaults.update(overrides)
    return SyntheticSpec(**defaults)


def drain(workload, proc_id):
    """Consume a stream into (ops_chunks, n_barriers, markers)."""
    ops, barriers, markers = [], 0, 0
    for chunk in workload.stream_for(proc_id):
        if chunk[0] == "ops":
            ops.append(chunk)
        elif chunk[0] == "barrier":
            barriers += 1
        elif chunk[0] == "warmup_done":
            markers += 1
    return ops, barriers, markers


class TestSpecValidation:
    def test_unknown_sharing(self):
        with pytest.raises(ValueError):
            make_spec(sharing="bogus")

    def test_unknown_stream_mode(self):
        with pytest.raises(ValueError):
            make_spec(stream_mode="bogus")

    def test_fraction_overflow(self):
        with pytest.raises(ValueError):
            make_spec(stream_fraction=0.8, shared_fraction=0.5)

    def test_needs_refs(self):
        with pytest.raises(ValueError):
            make_spec(refs_per_proc=1, phases=4)

    def test_scaled(self):
        spec = make_spec()
        assert spec.scaled(2.0).refs_per_proc == 8000
        with pytest.raises(ValueError):
            spec.scaled(0)


class TestStreamStructure:
    def test_barrier_counts_match_across_processors(self):
        w = SyntheticWorkload(make_spec())
        counts = {drain(w, p)[1] for p in range(4)}
        assert len(counts) == 1
        assert counts.pop() == 1 + 2    # warmup barrier + one per phase

    def test_warmup_marker_emitted_once(self):
        w = SyntheticWorkload(make_spec())
        assert drain(w, 0)[2] == 1

    def test_reference_counts(self):
        spec = make_spec()
        w = SyntheticWorkload(spec)
        ops, _b, _m = drain(w, 1)
        total = sum(len(c[1]) for c in ops)
        # Warmup: hot set + own shard, plus (uniform style) one read
        # sweep of the whole shared region.
        warmup = (spec.hot_lines + spec.shared_lines // spec.n_procs
                  + spec.shared_lines)
        assert total == pytest.approx(warmup + spec.refs_per_proc, abs=8)

    def test_chunks_are_parallel_arrays(self):
        w = SyntheticWorkload(make_spec())
        for chunk in w.stream_for(0):
            if chunk[0] != "ops":
                continue
            _tag, gaps, addrs, writes = chunk
            assert len(gaps) == len(addrs) == len(writes)
            assert (np.asarray(gaps) >= 1).all()

    def test_invalid_proc_id(self):
        w = SyntheticWorkload(make_spec())
        with pytest.raises(ValueError):
            w.stream_for(9)

    def test_deterministic_per_seed(self):
        a = SyntheticWorkload(make_spec(seed=5))
        b = SyntheticWorkload(make_spec(seed=5))
        chunk_a = next(iter(a.stream_for(0)))
        chunk_b = next(iter(b.stream_for(0)))
        assert (chunk_a[2] == chunk_b[2]).all()

    def test_different_procs_different_streams(self):
        w = SyntheticWorkload(make_spec())
        a = next(iter(w.stream_for(0)))[2]
        b = next(iter(w.stream_for(1)))[2]
        assert not np.array_equal(a, b)


class TestAddressPopulations:
    def collect_addrs(self, spec, proc_id=0):
        w = SyntheticWorkload(spec)
        return np.concatenate([c[2] for c in w.stream_for(proc_id)
                               if c[0] == "ops"])

    def test_private_addresses_disjoint_between_procs(self):
        spec = make_spec(shared_fraction=0.0, hot_shared_fraction=0.0,
                         shared_lines=0)
        a = set(self.collect_addrs(spec, 0).tolist())
        b = set(self.collect_addrs(spec, 1).tolist())
        assert not (a & b)

    def test_private_segment_bases(self):
        spec = make_spec(shared_fraction=0.0, hot_shared_fraction=0.0,
                         shared_lines=0)
        addrs = self.collect_addrs(spec, 2)
        assert (addrs >= private_base(2)).all()
        assert (addrs < private_base(3)).all()

    def test_shared_addresses_present(self):
        addrs = self.collect_addrs(make_spec(shared_fraction=0.4))
        assert (addrs >= SHARED_BASE).sum() > 0

    def test_stream_region_present(self):
        spec = make_spec(stream_lines=512, stream_fraction=0.3)
        addrs = self.collect_addrs(spec)
        stream_base = private_base(0) + spec.hot_lines * 64
        in_stream = ((addrs >= stream_base)
                     & (addrs < stream_base + 512 * 64))
        assert in_stream.sum() > 0

    @pytest.mark.parametrize("style", ["uniform", "neighbor", "transpose",
                                       "migratory", "producer"])
    def test_all_sharing_styles_generate(self, style):
        spec = make_spec(sharing=style, shared_fraction=0.3)
        addrs = self.collect_addrs(spec)
        assert len(addrs) > 0
        assert (addrs >= SHARED_BASE).sum() > 0

    def test_transpose_reads_remote_writes_own(self):
        spec = make_spec(sharing="transpose", shared_fraction=0.5,
                         n_procs=4, shared_lines=64)
        w = SyntheticWorkload(spec)
        shard = 64 // 4
        own_base = SHARED_BASE + (spec.hot_shared_lines + 0 * shard) * 64
        own_end = own_base + shard * 64
        writes_to_own = reads_from_remote = 0
        chunks = [c for c in w.stream_for(0) if c[0] == "ops"]
        for _tag, _gaps, addrs, writes in chunks[1:]:   # skip warmup
            addrs = np.asarray(addrs)
            writes = np.asarray(writes)
            shared = addrs >= SHARED_BASE
            own = shared & (addrs >= own_base) & (addrs < own_end)
            writes_to_own += (own & writes).sum()
            reads_from_remote += (shared & ~own & ~writes).sum()
        assert writes_to_own > 0
        assert reads_from_remote > 0
