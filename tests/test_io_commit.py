"""Tests for the I/O output-commit extension (Section 8).

The correctness property is the output-commit rule: nothing becomes
externally visible until a checkpoint covering it commits, and released
output is never un-happened by a rollback.
"""

import pytest

from conftest import ToyWorkload, build_tiny_machine

from repro.core.faults import NodeLossFault, TransientSystemFault
from repro.core.recovery import RecoveryManager


def io_machine(**overrides):
    defaults = dict(io_buffer_pages=2, log_bytes_per_node=64 * 1024)
    defaults.update(overrides)
    return build_tiny_machine(**defaults)


class TestConstruction:
    def test_requires_reserved_region(self):
        from repro.core.io import IOManager

        machine = build_tiny_machine()       # io_buffer_pages = 0
        assert machine.io_manager is None
        with pytest.raises(ValueError):
            IOManager(machine)

    def test_config_validation(self):
        from repro.core.config import ReViveConfig

        with pytest.raises(ValueError):
            ReViveConfig(io_buffer_pages=-1)

    def test_regions_are_disjoint_from_log(self):
        machine = io_machine()
        for node in range(4):
            log_pages = set(machine.log_region_pages(node))
            io_pages = set(machine.io_region_pages(node))
            assert io_pages and not (log_pages & io_pages)


class TestOutputCommit:
    def test_outputs_held_until_commit(self):
        machine = io_machine()
        io = machine.io_manager
        io.write_output(node=1, port=7, payload=111, at=100)
        io.write_output(node=2, port=7, payload=222, at=200)
        assert sorted(r.payload for r in io.pending_outputs()) == [111, 222]
        assert io.released == []

        released = io.on_commit(committed_epoch=1)
        assert sorted(r.payload for r in released) == [111, 222]
        assert io.pending_outputs() == []
        assert sorted(r.payload for r in io.released) == [111, 222]

    def test_release_happens_via_real_checkpoints(self):
        machine = io_machine(checkpoint_interval_ns=50_000)
        machine.attach_workload(ToyWorkload(rounds=3))
        machine.io_manager.write_output(0, port=1, payload=9, at=0)
        machine.run()
        assert machine.checkpointing.checkpoints_committed >= 1
        assert any(r.payload == 9 for r in machine.io_manager.released)
        assert machine.io_manager.pending_outputs() == []

    def test_parity_invariant_covers_io_buffers(self):
        machine = io_machine()
        machine.io_manager.write_output(1, port=3, payload=77, at=0)
        assert machine.revive.parity.check_all_parity() == []


class TestRollbackSemantics:
    def run_to_detect(self, machine):
        machine.attach_workload(ToyWorkload(rounds=6, refs_per_round=1200))
        coord = machine.checkpointing
        horizon = 3 * coord.interval_ns
        while coord.checkpoints_committed < 2 and not machine.all_finished:
            machine.run(until=horizon)
            horizon += coord.interval_ns
        detect = coord.commit_times[2] + int(0.8 * coord.interval_ns)
        machine.run(until=detect)
        return detect

    def test_unreleased_outputs_are_discarded_released_kept(self):
        machine = io_machine()
        detect = self.run_to_detect(machine)
        io = machine.io_manager
        released_before = list(io.released)
        # Output issued after the last commit: never released.
        io.write_output(3, port=5, payload=12345, at=detect)
        assert io.pending_outputs()

        TransientSystemFault().apply(machine)
        RecoveryManager(machine).recover(detect_time=detect,
                                         target_epoch=1)
        assert io.pending_outputs() == []
        assert io.released == released_before
        assert machine.verify_against_snapshot(1) == []

    def test_io_buffers_survive_node_loss(self):
        machine = io_machine()
        detect = self.run_to_detect(machine)
        io = machine.io_manager
        io.write_output(2, port=5, payload=999, at=detect)
        NodeLossFault(2).apply(machine)
        result = RecoveryManager(machine).recover(detect_time=detect,
                                                  lost_node=2,
                                                  target_epoch=1)
        # The pending record from the undone interval is gone, memory
        # is exact, and the (rebuilt) I/O region is parity-consistent.
        assert io.pending_outputs() == []
        assert machine.verify_against_snapshot(result.target_epoch) == []
        assert machine.revive.parity.check_all_parity() == []


class TestInputReplay:
    def test_inputs_logged_and_replayable(self):
        machine = io_machine()
        io = machine.io_manager
        io.log_input(0, port=2, payload=5, at=10)
        io.on_commit(1)
        io.log_input(0, port=2, payload=6, at=20)
        replay = io.replay_inputs(since_epoch=1)
        assert [r.payload for r in replay] == [6]
        everything = io.replay_inputs(since_epoch=0)
        assert [r.payload for r in everything] == [5, 6]
