"""Tests for the hybrid mirroring+parity extension (Section 6.1).

The paper's first listed extension: protect the most frequently used
pages with mirroring (cheap maintenance) and everything else with N+1
parity (cheap storage).
"""

import pytest

from conftest import ToyWorkload, build_tiny_machine, run_toy

from repro.core.faults import NodeLossFault
from repro.core.recovery import RecoveryManager
from repro.machine.config import MachineConfig
from repro.memory.layout import HybridGeometry, ParityGeometry


def make_hybrid(n_nodes=4, group=3, mirrored=8):
    return HybridGeometry(MachineConfig.tiny(n_nodes), group,
                          mirrored_stripes=mirrored)


class TestHybridGeometry:
    def test_validation(self):
        with pytest.raises(ValueError):
            HybridGeometry(MachineConfig.tiny(4), 0, 4)
        with pytest.raises(ValueError):
            HybridGeometry(MachineConfig.tiny(4), 3, -1)
        with pytest.raises(ValueError):
            # cluster of 3: cannot pair nodes for mirroring
            HybridGeometry(MachineConfig.tiny(8), 2, 4)

    def test_low_stripes_are_mirrored(self):
        g = make_hybrid(mirrored=8)
        assert g.is_mirrored_page(0, 0)
        assert g.is_mirrored_page(3, 7)
        assert not g.is_mirrored_page(0, 8)

    def test_mirror_holder_alternates(self):
        g = make_hybrid()
        # Pair (0, 1): even stripes mirrored on node 0, odd on node 1.
        assert g.is_parity_page(0, 0) and not g.is_parity_page(1, 0)
        assert g.is_parity_page(1, 1) and not g.is_parity_page(0, 1)

    def test_mirrored_parity_location_is_pair_partner(self):
        g = make_hybrid()
        assert g.parity_location(1, 0) == (0, 0)
        assert g.parity_location(0, 1) == (1, 1)
        assert g.parity_location(3, 0) == (2, 0)
        with pytest.raises(ValueError):
            g.parity_location(0, 0)        # node 0 holds the mirror

    def test_mirrored_stripe_is_a_pair(self):
        g = make_hybrid()
        assert g.stripe_of(1, 0) == [(0, 0), (1, 0)]
        assert g.stripe_data_pages(0, 0) == [(1, 0)]
        with pytest.raises(ValueError):
            g.stripe_data_pages(1, 0)      # node 1 holds data, not mirror

    def test_high_stripes_fall_back_to_raid5(self):
        g = make_hybrid(mirrored=8)
        base = ParityGeometry(MachineConfig.tiny(4), 3)
        for node in range(4):
            for page in range(8, 24):
                assert g.is_parity_page(node, page) == \
                    base.is_parity_page(node, page)

    def test_parity_fraction_between_extremes(self):
        cfg = MachineConfig.tiny(4)
        half = HybridGeometry(cfg, 3, cfg.pages_per_node // 2)
        frac = half.parity_fraction()
        assert 0.25 < frac < 0.5
        none = HybridGeometry(cfg, 3, 0)
        assert none.parity_fraction() == pytest.approx(0.25)
        full = HybridGeometry(cfg, 3, cfg.pages_per_node)
        assert full.parity_fraction() == pytest.approx(0.5)


class TestHybridMachine:
    def make_machine(self):
        return build_tiny_machine(mirrored_fraction=0.25)

    def test_geometry_selected(self):
        machine = self.make_machine()
        assert isinstance(machine.geometry, HybridGeometry)
        assert machine.geometry.mirrored_stripes > 0

    def test_parity_invariant_holds(self):
        machine = run_toy(self.make_machine())
        assert machine.revive.parity.check_all_parity() == []

    def test_early_allocations_are_mirrored(self):
        machine = run_toy(self.make_machine())
        parity = machine.revive.parity
        space = machine.addr_space
        mapped = space.mapped_physical_pages()
        mirrored = [1 for n, p in mapped
                    if machine.geometry.is_mirrored_page(n, p)]
        assert mirrored, "no hot pages landed in the mirrored region"

    @pytest.mark.parametrize("lost", [0, 2])
    def test_node_loss_recovery_under_hybrid(self, lost):
        machine = self.make_machine()
        machine.attach_workload(ToyWorkload(rounds=6))
        coord = machine.checkpointing
        horizon = 3 * coord.interval_ns
        while coord.checkpoints_committed < 2 and not machine.all_finished:
            machine.run(until=horizon)
            horizon += coord.interval_ns
        detect = coord.commit_times[2] + int(0.8 * coord.interval_ns)
        machine.run(until=detect)
        NodeLossFault(lost).apply(machine)
        result = RecoveryManager(machine).recover(detect_time=detect,
                                                  lost_node=lost)
        assert machine.verify_against_snapshot(result.target_epoch) == []
        assert machine.revive.parity.check_all_parity() == []


class TestConfigValidation:
    def test_fraction_bounds(self):
        from repro.core.config import ReViveConfig

        with pytest.raises(ValueError):
            ReViveConfig(mirrored_fraction=1.5)
        with pytest.raises(ValueError):
            ReViveConfig(parity_group_size=1, mirrored_fraction=0.5)
        cfg = ReViveConfig.cp_hybrid(100_000)
        assert cfg.mirrored_fraction == 0.25
