"""Property-based coherence invariants.

Random interleavings of reads/writes/writebacks from random processors
must preserve the single-writer multiple-reader invariant, directory
agreement with the caches, and value coherence (a reader sees the last
value written to the line).
"""

from hypothesis import given, settings, strategies as st

from conftest import build_tiny_machine

from repro.cache.cache import MODIFIED
from repro.coherence.directory import (
    DIR_EXCLUSIVE,
    DIR_SHARED,
    DIR_UNCACHED,
)


def check_invariants(machine, lines):
    for line_addr in lines:
        home = machine.nodes[machine.addr_space.node_of(line_addr)]
        entry = home.directory.peek(line_addr)
        holders = [n for n in machine.nodes
                   if n.hierarchy.l2.peek(line_addr) is not None]
        dirty = [n for n in machine.nodes
                 if (n.hierarchy.l2.peek(line_addr) is not None and
                     n.hierarchy.l2.peek(line_addr).state == MODIFIED)]
        # Single writer.
        assert len(dirty) <= 1, f"{line_addr:#x}: two dirty copies"
        if entry is None or entry.state == DIR_UNCACHED:
            assert not holders
        elif entry.state == DIR_EXCLUSIVE:
            assert {n.node_id for n in holders} <= {entry.owner}
        else:
            assert entry.state == DIR_SHARED
            assert not dirty
            assert {n.node_id for n in holders} <= entry.sharers


@settings(max_examples=25, deadline=None)
@given(st.lists(st.tuples(st.integers(0, 3),        # processor
                          st.integers(0, 7),        # line index
                          st.sampled_from(["r", "w", "wb"])),
                min_size=1, max_size=120))
def test_random_interleavings_preserve_coherence(ops):
    machine = build_tiny_machine(revive=False)
    space = machine.addr_space
    lines = [space.translate_line((1 << 32) + i * 4096, i % 4)
             for i in range(8)]
    last_written = {}
    t = 0
    for proc, line_index, op in ops:
        t += 100
        line_addr = lines[line_index]
        hierarchy = machine.nodes[proc].hierarchy
        if op == "r":
            result = hierarchy.probe(line_addr, is_write=False)
            if not result.is_hit:
                machine.protocol.read(proc, line_addr, t)
            # Value coherence: the holder's dirty value or memory must
            # reflect the last write.
            if line_addr in last_written:
                expected = last_written[line_addr]
                cached = None
                for node in machine.nodes:
                    line = node.hierarchy.l2.peek(line_addr)
                    if line is not None and line.state == MODIFIED:
                        cached = line.value
                home = machine.nodes[space.node_of(line_addr)]
                seen = cached if cached is not None \
                    else home.memory.read_line(line_addr)
                assert seen == expected
        elif op == "w":
            result = hierarchy.probe(line_addr, is_write=True)
            if result.need == "UPG":
                machine.protocol.write(proc, line_addr, t, upgrade=True)
            elif result.need == "GETX":
                machine.protocol.write(proc, line_addr, t, upgrade=False)
            value = machine.next_store_value()
            hierarchy.write_value(line_addr, value)
            last_written[line_addr] = value
        else:
            line = hierarchy.l2.peek(line_addr)
            if line is not None and line.state == MODIFIED:
                value = line.value
                hierarchy.invalidate(line_addr)
                machine.protocol.writeback(proc, line_addr, value, t)
        check_invariants(machine, lines)
