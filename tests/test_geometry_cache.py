"""The memoized geometry cache: correctness, sharing, and invalidation.

The cache (`repro.memory.geomcache`) answers the same questions as the
pure geometry functions — home node, covering parity line, mirroring,
stripe peers — so every answer is pinned against the direct derivation,
and the two lifecycle rules are pinned too: a rebuilt machine starts
with a fresh cache, and node-loss recovery invalidates the memoized
stripe map before post-recovery operation resumes.
"""

import pytest

from conftest import ToyWorkload, build_tiny_machine, run_toy

from repro.core.faults import NodeLossFault
from repro.core.recovery import RecoveryManager
from repro.memory.geomcache import GeometryCache


def _touched_data_lines(machine, limit=64):
    """Line addresses of mapped (data) pages, a bounded sample."""
    space = machine.addr_space
    lines = []
    for node, ppage in space.mapped_physical_pages():
        lines.append(space.page_base(node, ppage))
        lines.append(space.page_base(node, ppage)
                     + machine.config.page_size
                     - machine.config.line_size)
        if len(lines) >= limit:
            break
    assert lines, "workload mapped no pages"
    return lines


class TestEntryCorrectness:
    def test_entry_matches_direct_geometry(self):
        machine = run_toy(build_tiny_machine())
        space = machine.addr_space
        geometry = machine.geometry
        cache = machine.geom_cache
        for line in _touched_data_lines(machine):
            node, ppage = space.node_page_of(line)
            parity_node, parity_page = geometry.parity_location(node, ppage)
            expected_parity = (space.page_base(parity_node, parity_page)
                               + line % machine.config.page_size)
            assert cache.entry(line) == (
                node, expected_parity, parity_node,
                geometry.is_mirrored_page(node, ppage))

    def test_entry_is_memoized(self):
        machine = build_tiny_machine()
        cache = machine.geom_cache
        line = machine.addr_space.page_base(1, 1)
        first = cache.entry(line)
        builds = cache.builds
        assert cache.entry(line) is first
        assert cache.builds == builds

    def test_mirroring_flag(self):
        machine = build_tiny_machine(parity_group_size=1)
        # Find a data line and check the mirrored flag + single peer.
        space = machine.addr_space
        for node in range(machine.config.n_nodes):
            for ppage in range(4):
                if not machine.geometry.is_parity_page(node, ppage):
                    line = space.page_base(node, ppage)
                    assert machine.geom_cache.entry(line)[3] is True
                    assert len(machine.geom_cache.peers(line)) == 1
                    return
        pytest.fail("no data page found")

    def test_parity_page_has_no_covering_parity(self):
        machine = build_tiny_machine()
        space = machine.addr_space
        geometry = machine.geometry
        for node in range(machine.config.n_nodes):
            for ppage in range(geometry.cluster_size):
                if geometry.is_parity_page(node, ppage):
                    line = space.page_base(node, ppage)
                    node_, parity_line, parity_home, mirrored = \
                        machine.geom_cache.entry(line)
                    assert node_ == node
                    assert parity_line is None and parity_home is None
                    assert mirrored is False
                    with pytest.raises(ValueError):
                        machine.revive.parity.parity_line_of(line)
                    return
        pytest.fail("no parity page found")

    def test_baseline_machine_has_home_only_entries(self):
        machine = build_tiny_machine(revive=False)
        line = machine.addr_space.page_base(2, 3)
        assert machine.geom_cache.entry(line) == (2, None, None, False)
        assert machine.geom_cache.home_node(line) == 2

    def test_peers_match_parity_engine(self):
        machine = run_toy(build_tiny_machine())
        parity = machine.revive.parity
        for line in _touched_data_lines(machine, limit=16):
            assert list(machine.geom_cache.peers(line)) == \
                parity.peer_lines_of(line)

    def test_home_node_matches_addr_space(self):
        machine = build_tiny_machine()
        space = machine.addr_space
        for node in range(machine.config.n_nodes):
            for line in (space.page_base(node, 0),
                         space.page_base(node, 2) + 128):
                assert machine.geom_cache.home_node(line) == \
                    space.node_of(line)


class TestSharing:
    def test_parity_engine_uses_machine_cache(self):
        machine = build_tiny_machine()
        assert machine.revive.parity.geom is machine.geom_cache

    def test_rebuild_gets_fresh_cache(self):
        m1 = build_tiny_machine()
        m1.geom_cache.entry(m1.addr_space.page_base(1, 1))
        m2 = build_tiny_machine()
        assert m2.geom_cache is not m1.geom_cache
        assert len(m2.geom_cache) == 0
        assert m2.geom_cache.builds == 0


class TestInvalidation:
    def test_invalidate_clears_and_counts(self):
        machine = build_tiny_machine()
        cache = machine.geom_cache
        line = machine.addr_space.page_base(1, 1)
        cache.entry(line)
        cache.peers(line)
        cache.home_node(line)
        assert len(cache) == 3
        cache.invalidate()
        assert len(cache) == 0
        assert cache.invalidations == 1
        # Entries recompute to the same answers after invalidation.
        assert cache.entry(line)[0] == 1

    def _run_to_detect(self, machine):
        machine.attach_workload(ToyWorkload(rounds=6))
        coord = machine.checkpointing
        horizon = 3 * coord.interval_ns
        while coord.checkpoints_committed < 2 and not machine.all_finished:
            machine.run(until=horizon)
            horizon += coord.interval_ns
        detect = coord.commit_times[2] + int(0.8 * coord.interval_ns)
        machine.run(until=detect)
        return detect

    def test_node_loss_recovery_invalidates_stripe_map(self):
        machine = build_tiny_machine()
        detect = self._run_to_detect(machine)
        cache = machine.geom_cache
        assert len(cache) > 0          # hot path populated it
        stale_snapshot = dict(cache._entries)
        NodeLossFault(2).apply(machine)
        result = RecoveryManager(machine).recover(detect_time=detect,
                                                  lost_node=2)
        # The pre-fault stripe map did not survive mark_recovered ...
        assert cache.invalidations >= 1
        # ... recovery itself repopulated entries afresh, and they
        # agree with the (unchanged) geometry derivation.
        space = machine.addr_space
        geometry = machine.geometry
        for line, entry in list(cache._entries.items())[:32]:
            node, ppage = space.node_page_of(line)
            if geometry.is_parity_page(node, ppage):
                continue
            assert entry[1] == stale_snapshot.get(line, entry)[1]
            parity_node, parity_page = geometry.parity_location(node, ppage)
            assert entry[1] == (space.page_base(parity_node, parity_page)
                                + line % machine.config.page_size)
        # And recovery still lands on the bit-exact snapshot.
        assert machine.verify_against_snapshot(result.target_epoch) == []
        assert machine.revive.parity.check_all_parity() == []

    def test_transient_recovery_keeps_cache(self):
        # No memory loss -> no mark_recovered -> no forced rebuild.
        from repro.core.faults import TransientSystemFault
        machine = build_tiny_machine()
        detect = self._run_to_detect(machine)
        TransientSystemFault().apply(machine)
        RecoveryManager(machine).recover(detect_time=detect)
        assert machine.geom_cache.invalidations == 0


class TestStandalone:
    def test_len_counts_all_tables(self):
        machine = build_tiny_machine()
        cache = GeometryCache(machine.addr_space, machine.geometry)
        line = machine.addr_space.page_base(0, 1)
        cache.entry(line)
        assert len(cache) == 1
        cache.home_node(line)
        assert len(cache) == 2
