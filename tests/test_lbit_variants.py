"""Tests for the optional-L-bit designs of Section 4.1.2.

The L bit is a performance optimisation, not a correctness requirement:
without it (or with bits held only in a bounded directory cache), lines
are occasionally logged more than once per epoch, and recovery relies
on applying duplicate entries in reverse insertion order.
"""

import pytest

from conftest import ToyWorkload, build_tiny_machine

from repro.core.faults import NodeLossFault, TransientSystemFault
from repro.core.log import LINES_PER_BLOCK, MemoryLog
from repro.core.recovery import RecoveryManager


def region(n_blocks=16):
    return [0x300000 + i * 64 for i in range(n_blocks * LINES_PER_BLOCK)]


class TestBoundedLBits:
    def test_displacement_clears_bits(self):
        log = MemoryLog(0, region(), 64, l_bit_capacity=2)
        log.set_logged(0x40)
        log.set_logged(0x80)
        log.set_logged(0xc0)          # displaces 0x40
        assert not log.is_logged(0x40)
        assert log.is_logged(0x80) and log.is_logged(0xc0)

    def test_lru_refresh(self):
        log = MemoryLog(0, region(), 64, l_bit_capacity=2)
        log.set_logged(0x40)
        log.set_logged(0x80)
        log.set_logged(0x40)          # refresh
        log.set_logged(0xc0)          # displaces 0x80, not 0x40
        assert log.is_logged(0x40)
        assert not log.is_logged(0x80)

    def test_zero_capacity_disables_bits(self):
        log = MemoryLog(0, region(), 64, l_bit_capacity=0)
        log.set_logged(0x40)
        assert not log.is_logged(0x40)

    def test_validation(self):
        with pytest.raises(ValueError):
            MemoryLog(0, region(), 64, l_bit_capacity=-1)


class TestRecoveryWithoutLBits:
    @pytest.mark.parametrize("capacity", [0, 8])
    def test_duplicate_entries_still_roll_back_exactly(self, capacity):
        """Both degraded L-bit designs recover bit-for-bit: the reverse
        insertion order makes the oldest (checkpoint-value) entry of
        each line land last."""
        machine = build_tiny_machine(l_bit_capacity=capacity,
                                     log_bytes_per_node=96 * 1024)
        machine.attach_workload(ToyWorkload(rounds=6,
                                            refs_per_round=1500))
        coord = machine.checkpointing
        horizon = 3 * coord.interval_ns
        while coord.checkpoints_committed < 2 and not machine.all_finished:
            machine.run(until=horizon)
            horizon += coord.interval_ns
        detect = coord.commit_times[2] + int(0.8 * coord.interval_ns)
        machine.run(until=detect)
        TransientSystemFault().apply(machine)
        result = RecoveryManager(machine).recover(detect_time=detect,
                                                  target_epoch=1)
        assert machine.verify_against_snapshot(result.target_epoch) == []

    def test_node_loss_without_l_bits(self):
        machine = build_tiny_machine(l_bit_capacity=0,
                                     log_bytes_per_node=96 * 1024)
        machine.attach_workload(ToyWorkload(rounds=6, refs_per_round=1500))
        coord = machine.checkpointing
        horizon = 3 * coord.interval_ns
        while coord.checkpoints_committed < 2 and not machine.all_finished:
            machine.run(until=horizon)
            horizon += coord.interval_ns
        detect = coord.commit_times[2] + int(0.8 * coord.interval_ns)
        machine.run(until=detect)
        NodeLossFault(1).apply(machine)
        result = RecoveryManager(machine).recover(detect_time=detect,
                                                  lost_node=1,
                                                  target_epoch=1)
        assert machine.verify_against_snapshot(result.target_epoch) == []
        assert machine.revive.parity.check_all_parity() == []

    def test_no_l_bits_logs_more(self):
        def run(capacity):
            machine = build_tiny_machine(l_bit_capacity=capacity,
                                         log_bytes_per_node=96 * 1024)
            machine.attach_workload(ToyWorkload(rounds=3,
                                                refs_per_round=1500))
            machine.run()
            return sum(log.appends
                       for log in machine.revive.logs.values())

        assert run(0) > run(None)
