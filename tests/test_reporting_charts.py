"""Tests for the ASCII chart renderers."""

import pytest

from repro.harness.reporting import bar_chart, stacked_bar_chart, timeline


class TestBarChart:
    def test_proportional_bars(self):
        out = bar_chart(["a", "b"], [10.0, 5.0], width=20)
        lines = out.splitlines()
        assert lines[0].count("#") == 20
        assert lines[1].count("#") == 10

    def test_zero_values(self):
        out = bar_chart(["a"], [0.0])
        assert "#" not in out

    def test_unit_suffix(self):
        out = bar_chart(["x"], [3.0], unit="%")
        assert "3%" in out

    def test_validation(self):
        with pytest.raises(ValueError):
            bar_chart(["a"], [1.0, 2.0])

    def test_empty(self):
        assert bar_chart([], []) == ""


class TestStackedBarChart:
    def test_legend_and_fills(self):
        out = stacked_bar_chart(
            ["app1", "app2"],
            {"RD": [4.0, 2.0], "PAR": [4.0, 0.0]}, width=16)
        lines = out.splitlines()
        assert lines[0].startswith("legend:")
        assert "#=RD" in lines[0] and "==PAR" in lines[0].replace(" ", "")
        assert lines[1].count("#") == 8
        assert lines[1].count("=") == 8
        assert lines[2].count("#") == 4

    def test_series_alignment_checked(self):
        with pytest.raises(ValueError):
            stacked_bar_chart(["a"], {"x": [1.0, 2.0]})

    def test_too_many_categories(self):
        with pytest.raises(ValueError):
            stacked_bar_chart(["a"], {str(i): [1.0] for i in range(9)})


class TestTimeline:
    def test_phase_spans(self):
        out = timeline([("lost work", 30.0), ("rollback", 70.0)],
                       width=10)
        bar = out.splitlines()[0]
        assert bar.count("|") == 3
        assert "lost work: 30" in out

    def test_requires_positive_total(self):
        with pytest.raises(ValueError):
            timeline([("a", 0.0)])
