"""Property-based end-to-end tests: parity invariant and rollback.

These drive the whole machine with randomized workloads and fault
points and assert ReVive's two global invariants:

* at any quiescent point, every parity line equals the XOR of its
  stripe (parity is maintained exactly, always); and
* after any fault (transient or single-node loss at any time), recovery
  restores memory bit-for-bit to the target checkpoint snapshot.
"""

from hypothesis import given, settings, strategies as st

from conftest import ToyWorkload, build_tiny_machine

from repro.core.faults import NodeLossFault, TransientSystemFault
from repro.core.recovery import RecoveryManager


@settings(max_examples=10, deadline=None)
@given(seed=st.integers(0, 1 << 16), write_fraction=st.floats(0.05, 0.8),
       group=st.sampled_from([1, 3]))
def test_parity_invariant_holds_after_any_run(seed, write_fraction, group):
    machine = build_tiny_machine(parity_group_size=group)
    machine.attach_workload(ToyWorkload(rounds=2, refs_per_round=800,
                                        write_fraction=write_fraction,
                                        seed=seed))
    machine.run()
    assert machine.revive.parity.check_all_parity() == []


@settings(max_examples=10, deadline=None)
@given(seed=st.integers(0, 1 << 16),
       fault_point=st.floats(0.1, 0.95),
       lost_node=st.sampled_from([None, 0, 1, 2, 3]),
       group=st.sampled_from([1, 3]))
def test_recovery_restores_checkpoint_exactly(seed, fault_point, lost_node,
                                              group):
    machine = build_tiny_machine(parity_group_size=group)
    machine.attach_workload(ToyWorkload(rounds=5, refs_per_round=1200,
                                        seed=seed))
    # First run to completion on a scout machine to learn the horizon.
    machine.run()
    horizon = machine.simulator.now
    committed = machine.checkpointing.checkpoints_committed
    if committed < 1:
        return

    machine = build_tiny_machine(parity_group_size=group)
    machine.attach_workload(ToyWorkload(rounds=5, refs_per_round=1200,
                                        seed=seed))
    detect = max(1, int(horizon * fault_point))
    machine.run(until=detect)
    committed = machine.checkpointing.checkpoints_committed
    if committed < 1:
        return
    target = committed if fault_point > 0.5 else max(committed - 1,
                                                     committed - 1)
    target = max(target, committed - 1)

    if lost_node is None:
        TransientSystemFault().apply(machine)
    else:
        NodeLossFault(lost_node).apply(machine)
    result = RecoveryManager(machine).recover(
        detect_time=machine.simulator.now, lost_node=lost_node,
        target_epoch=target)

    assert machine.verify_against_snapshot(result.target_epoch) == []
    assert machine.revive.parity.check_all_parity() == []
