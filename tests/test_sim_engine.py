"""Unit tests for the event queue and simulator loop."""

import pytest

from repro.sim.engine import EventQueue, Simulator


class TestEventQueue:
    def test_orders_by_time(self):
        q = EventQueue()
        q.push(30, "c")
        q.push(10, "a")
        q.push(20, "b")
        assert [q.pop()[1] for _ in range(3)] == ["a", "b", "c"]

    def test_ties_break_by_insertion_order(self):
        q = EventQueue()
        q.push(5, "first")
        q.push(5, "second")
        q.push(5, "third")
        assert [q.pop()[1] for _ in range(3)] == ["first", "second",
                                                  "third"]

    def test_peek_time(self):
        q = EventQueue()
        assert q.peek_time() is None
        q.push(42, "x")
        assert q.peek_time() == 42
        assert len(q) == 1

    def test_negative_time_rejected(self):
        q = EventQueue()
        with pytest.raises(ValueError):
            q.push(-1, "x")

    def test_clear_and_bool(self):
        q = EventQueue()
        assert not q
        q.push(1, "x")
        assert q
        q.clear()
        assert not q


class TestSimulator:
    def test_runs_actor_until_retired(self):
        sim = Simulator()
        calls = []

        def actor(now):
            calls.append(now)
            return now + 10 if len(calls) < 3 else None

        sim.schedule(0, actor)
        final = sim.run()
        assert calls == [0, 10, 20]
        assert final == 20

    def test_until_bound_is_respected(self):
        sim = Simulator()
        calls = []

        def actor(now):
            calls.append(now)
            return now + 10

        sim.schedule(0, actor)
        sim.run(until=25)
        assert calls == [0, 10, 20]
        # The simulation can be resumed where it stopped.
        sim.run(until=45)
        assert calls == [0, 10, 20, 30, 40]

    def test_interleaves_two_actors_by_time(self):
        sim = Simulator()
        order = []

        def make(name, period, n):
            state = {"count": 0}

            def actor(now):
                order.append((name, now))
                state["count"] += 1
                return now + period if state["count"] < n else None
            return actor

        sim.schedule(0, make("fast", 5, 4))
        sim.schedule(0, make("slow", 12, 2))
        sim.run()
        times = [t for _n, t in order]
        assert times == sorted(times)
        assert ("slow", 12) in order and ("fast", 15) in order

    def test_global_hook_fires_between_events(self):
        sim = Simulator()
        hook_calls = []

        def actor(now):
            return now + 10 if now < 100 else None

        def hook(trigger):
            hook_calls.append(trigger)
            return trigger + 50 if trigger < 60 else None

        sim.schedule(0, actor)
        sim.set_global_hook(25, hook)
        sim.run()
        assert hook_calls == [25, 75]

    def test_hook_can_stop_rescheduling(self):
        sim = Simulator()

        def actor(now):
            return now + 10 if now < 50 else None

        def hook(trigger):
            return None            # one-shot hook

        sim.schedule(0, actor)
        sim.set_global_hook(15, hook)
        final = sim.run()
        assert final == 50

    def test_drain_rebuild_reschedules_everyone(self):
        sim = Simulator()
        seen = []

        def make(name):
            def actor(now):
                seen.append((name, now))
                return None
            return actor

        a, b = make("a"), make("b")
        sim.schedule(5, a)
        sim.schedule(7, b)
        sim.drain_rebuild(lambda actor: 100)
        sim.run()
        assert sorted(seen) == [("a", 100), ("b", 100)]

    def test_drain_rebuild_can_drop_actors(self):
        sim = Simulator()
        seen = []

        def actor(now):
            seen.append(now)
            return None

        sim.schedule(5, actor)
        sim.drain_rebuild(lambda a: None)
        sim.run()
        assert seen == []
