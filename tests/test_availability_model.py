"""Unit tests for the availability arithmetic (Section 3.3.2)."""

import pytest

from repro.core.availability import (
    NS_PER_DAY,
    NS_PER_MS,
    REAL_INTERVAL_NS,
    availability,
    average_lost_work_ns,
    nines,
    scale_to_real_interval,
    unavailable_time_ms,
    worst_case_lost_work_ns,
)


class TestAvailability:
    def test_paper_headline(self):
        """820 ms downtime, one error per day: better than five nines."""
        a = availability(NS_PER_DAY, 820 * NS_PER_MS)
        assert a > 0.99999

    def test_memory_intact_case(self):
        a = availability(NS_PER_DAY, 250 * NS_PER_MS)
        assert a > 0.999997

    def test_monthly_errors_are_even_better(self):
        daily = availability(NS_PER_DAY, 820 * NS_PER_MS)
        monthly = availability(30 * NS_PER_DAY, 820 * NS_PER_MS)
        assert monthly > daily

    def test_degenerate_cases(self):
        assert availability(100, 100) == 0.0
        assert availability(100, 0) == 1.0

    def test_validation(self):
        with pytest.raises(ValueError):
            availability(0, 1)
        with pytest.raises(ValueError):
            availability(10, -1)


class TestNines:
    def test_values(self):
        assert nines(0.99999) == pytest.approx(5.0)
        assert nines(0.0) == 0.0

    def test_validation(self):
        with pytest.raises(ValueError):
            nines(1.0)
        with pytest.raises(ValueError):
            nines(-0.1)


class TestLostWork:
    def test_worst_case(self):
        """Error just before a commit + detection latency (Section 3.3.2:
        100 ms + 80 ms = 180 ms of lost work)."""
        assert worst_case_lost_work_ns(100 * NS_PER_MS, 80 * NS_PER_MS) \
            == 180 * NS_PER_MS

    def test_average_case(self):
        """Half an interval + detection latency = 130 ms."""
        assert average_lost_work_ns(100 * NS_PER_MS, 80 * NS_PER_MS) \
            == 130 * NS_PER_MS

    def test_validation(self):
        with pytest.raises(ValueError):
            worst_case_lost_work_ns(-1, 0)
        with pytest.raises(ValueError):
            average_lost_work_ns(0, -1)


class TestScaling:
    def test_paper_scaling_step(self):
        """The paper multiplies 10 ms-interval measurements by 10."""
        assert scale_to_real_interval(59 * NS_PER_MS, 10 * NS_PER_MS) \
            == 590 * NS_PER_MS

    def test_default_real_interval(self):
        assert REAL_INTERVAL_NS == 100 * NS_PER_MS

    def test_validation(self):
        with pytest.raises(ValueError):
            scale_to_real_interval(1, 0)


class TestUnavailableTime:
    def test_figure7_sum(self):
        """Figure 7's worst case: 180 + 50 + 100 + 490 = 820 ms."""
        assert unavailable_time_ms(180, 50, 100, 490) == 820

    def test_validation(self):
        with pytest.raises(ValueError):
            unavailable_time_ms(-1, 0, 0, 0)
