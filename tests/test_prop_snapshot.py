"""Property-based snapshot/restore tests (docs/SNAPSHOTS.md).

The deterministic oracle (``tests/test_snapshot_oracle.py``) pins the
roundtrip at checkpoint boundaries; these properties pin it at
*arbitrary* pause points, across variants and workloads, and check
that snapshots compose — an image of a restored machine is as good as
an image of the original.
"""

from __future__ import annotations

import pickle

from hypothesis import given, settings, strategies as st

from tests.test_snapshot_oracle import (
    APPS,
    INTERVAL_NS,
    REVIVE_VARIANTS,
    build,
    fingerprint,
    horizon,
)

ALL_VARIANTS = ("baseline",) + REVIVE_VARIANTS


@settings(max_examples=10, deadline=None)
@given(app=st.sampled_from(APPS), variant=st.sampled_from(ALL_VARIANTS),
       fraction=st.floats(0.05, 0.9))
def test_roundtrip_at_any_pause_point(app, variant, fraction):
    """Pause anywhere, restore elsewhere: the continuation of the
    restored machine is bit-identical to never having paused."""
    until = horizon(variant)
    reference = build(app, variant)
    reference.run(until=until)
    final = fingerprint(reference)

    pause = max(1, int(final["now"] * fraction))
    stepped = build(app, variant)
    stepped.run(until=pause)
    image = pickle.dumps(stepped.snapshot(),
                         protocol=pickle.HIGHEST_PROTOCOL)
    fresh = build(app, variant)
    fresh.restore(pickle.loads(image))
    fresh.run(until=until)
    assert fingerprint(fresh) == final


@settings(max_examples=6, deadline=None)
@given(app=st.sampled_from(APPS), first=st.floats(0.1, 0.45),
       second=st.floats(0.5, 0.9))
def test_chained_snapshots_compose(app, first, second):
    """Snapshot a restored machine and restore *that*: two hops reach
    the same final state as zero hops."""
    reference = build(app, "cp_parity")
    reference.run()
    final = fingerprint(reference)
    end = final["now"]

    hop1 = build(app, "cp_parity")
    hop1.run(until=max(1, int(end * first)))
    image1 = pickle.dumps(hop1.snapshot())

    hop2 = build(app, "cp_parity")
    hop2.restore(pickle.loads(image1))
    hop2.run(until=max(1, int(end * second)))
    image2 = pickle.dumps(hop2.snapshot())

    last = build(app, "cp_parity")
    last.restore(pickle.loads(image2))
    last.run()
    assert fingerprint(last) == final


@settings(max_examples=20, deadline=None)
@given(app=st.sampled_from(APPS), proc=st.integers(0, 3),
       chunks=st.integers(0, 12))
def test_replay_stream_is_a_pure_fast_forward(app, proc, chunks):
    """``replay_stream(p, k)`` equals consuming ``k`` chunks of a fresh
    stream — the purity assumption processor restore rests on."""
    from repro.workloads.registry import get_workload

    def take(stream, k):
        out = []
        for _ in range(k):
            try:
                out.append(next(stream))
            except StopIteration:
                break
        return out

    workload = get_workload(app, scale=0.05, n_procs=4)
    expected = take(workload.stream_for(proc), chunks + 2)
    replayed, last = workload.replay_stream(proc, min(chunks,
                                                      len(expected)))
    if chunks == 0:
        assert last is None
    elif chunks <= len(expected):
        assert _chunk_eq(last, expected[chunks - 1])
    # The repositioned stream continues exactly where a fresh one
    # consumed that far would.
    for mine, theirs in zip(take(replayed, 2),
                            expected[min(chunks, len(expected)):]):
        assert _chunk_eq(mine, theirs)


def _chunk_eq(a, b) -> bool:
    if a[0] != b[0] or len(a) != len(b):
        return False
    for left, right in zip(a[1:], b[1:]):
        if hasattr(left, "shape"):
            if not (left == right).all():
                return False
        elif left != right:
            return False
    return True
