"""Calibration pins for the Splash-2 analogs (Table 4).

Runs every analog (at reduced length) on the bench machine and asserts
the miss-rate structure that the reproduction depends on: the
L2-overflowing trio far above everyone, the compute-bound codes at the
bottom, and each analog inside a generous band around its steady-state
calibrated value — wide enough to absorb the shorter runs' noise, tight
enough to catch a regression in the cache, coherence, or generator
code.
"""

import pytest

from repro.harness.runner import run_app
from repro.workloads.registry import APP_NAMES

SCALE = 0.4

#: (lower, upper) bounds in percent at SCALE=0.4 — centred on the
#: full-length calibrated values with ~2x slack.
BANDS = {
    "barnes": (0.01, 0.4),
    "cholesky": (0.08, 1.2),
    "fft": (0.7, 3.6),
    "fmm": (0.05, 0.8),
    "lu": (0.005, 0.25),
    "ocean": (1.0, 4.8),
    "radiosity": (0.1, 1.3),
    "radix": (1.2, 5.5),
    "raytrace": (0.12, 1.5),
    "volrend": (0.12, 1.6),
    "water-n2": (0.003, 0.15),
    "water-sp": (0.003, 0.15),
}

HIGH = ("fft", "ocean", "radix")


@pytest.fixture(scope="module")
def miss_rates():
    return {app: 100.0 * run_app(app, "baseline", scale=SCALE).l2_miss_rate
            for app in APP_NAMES}


def test_all_apps_inside_their_bands(miss_rates):
    out_of_band = {
        app: (rate, BANDS[app])
        for app, rate in miss_rates.items()
        if not BANDS[app][0] <= rate <= BANDS[app][1]
    }
    assert not out_of_band, out_of_band


def test_l2_overflow_trio_dominates(miss_rates):
    low = max(rate for app, rate in miss_rates.items() if app not in HIGH)
    high = min(miss_rates[app] for app in HIGH)
    assert high > 1.5 * low


def test_waters_are_the_floor(miss_rates):
    floor = min(miss_rates.values())
    assert miss_rates["water-n2"] <= 3 * floor
    assert miss_rates["water-sp"] <= 3 * floor
