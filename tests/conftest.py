"""Shared test fixtures: small machines and a deterministic toy workload."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.config import ReViveConfig
from repro.machine.config import MachineConfig
from repro.machine.system import Machine


class ToyWorkload:
    """Small deterministic workload for integration tests.

    Each processor mixes private accesses with a shared region, in
    ``rounds`` barrier-delimited phases, with a warmup/first-touch
    phase like the real generators.
    """

    instructions_per_ref = 2.0

    def __init__(self, n_procs: int = 4, rounds: int = 3,
                 refs_per_round: int = 2000, write_fraction: float = 0.3,
                 private_lines: int = 512, shared_lines: int = 256,
                 seed: int = 0) -> None:
        self.n_procs = n_procs
        self.rounds = rounds
        self.refs_per_round = refs_per_round
        self.write_fraction = write_fraction
        self.private_lines = private_lines
        self.shared_lines = shared_lines
        self.seed = seed

    def stream_for(self, proc_id: int):
        rng = np.random.default_rng((self.seed, proc_id))
        # First touch: own private region + own shared shard.
        shard = self.shared_lines // self.n_procs
        private_base = (proc_id + 1) << 24
        shared_base = 1 << 32
        touch = np.concatenate([
            private_base + np.arange(self.private_lines) * 64,
            shared_base + (proc_id * shard + np.arange(shard)) * 64,
        ])
        yield ("ops", np.ones(len(touch), dtype=np.int64), touch,
               np.ones(len(touch), dtype=bool))
        yield ("barrier",)
        yield ("warmup_done",)
        for _round in range(self.rounds):
            n = self.refs_per_round
            addrs = private_base + rng.integers(
                0, self.private_lines, n) * 64
            shared_mask = rng.random(n) < 0.25
            addrs[shared_mask] = shared_base + rng.integers(
                0, self.shared_lines, int(shared_mask.sum())) * 64
            writes = rng.random(n) < self.write_fraction
            gaps = rng.integers(1, 4, n)
            yield ("ops", gaps, addrs, writes)
            yield ("barrier",)


def tiny_revive_config(**overrides) -> ReViveConfig:
    defaults = dict(parity_group_size=3, checkpoint_interval_ns=50_000,
                    log_bytes_per_node=64 * 1024, debug_snapshots=True)
    defaults.update(overrides)
    return ReViveConfig(**defaults)


def build_tiny_machine(n_nodes: int = 4, revive: bool = True,
                       **revive_overrides) -> Machine:
    config = MachineConfig.tiny(n_nodes)
    revive_config = tiny_revive_config(**revive_overrides) if revive else None
    return Machine(config, revive_config)


@pytest.fixture
def tiny_machine() -> Machine:
    return build_tiny_machine()


@pytest.fixture
def baseline_machine() -> Machine:
    return build_tiny_machine(revive=False)


@pytest.fixture
def toy_workload() -> ToyWorkload:
    return ToyWorkload()


def run_toy(machine: Machine, workload: ToyWorkload = None,
            until: int = None) -> Machine:
    machine.attach_workload(workload or ToyWorkload())
    machine.run(until=until)
    return machine
