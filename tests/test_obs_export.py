"""Chrome Trace Event export: structural validation for Perfetto.

``repro export-trace`` output must be loadable by Perfetto /
``chrome://tracing``: a single JSON object with a ``traceEvents``
array of "X" (complete), "i" (instant), and "M" (metadata) records.
Structure is validated here both on synthetic streams (exact slice
arithmetic) and on a real traced machine (every span nests its
segments end-to-end on the right track).
"""

from __future__ import annotations

import json

from conftest import build_tiny_machine

from repro.obs import (
    RingBufferSink,
    Tracer,
    chrome_trace,
    write_chrome_trace,
)

SPAN_END = {
    "v": 2, "seq": 5, "ts": 300, "cat": "span", "name": "span.end",
    "txn": 7, "class": "read_miss", "node": 2, "dur_ns": 180,
    "segs": [["net", 40], ["dir", 21], ["mem_read", 60], ["net", 59]],
}
SPAN_BEGIN = {
    "v": 2, "seq": 4, "ts": 120, "cat": "span", "name": "span.begin",
    "txn": 7, "class": "read_miss", "node": 2,
}
INSTANT = {
    "v": 2, "seq": 6, "ts": 500, "cat": "ckpt", "name": "ckpt.begin",
    "epoch": 1,
}


class TestChromeTraceSynthetic:
    def test_span_becomes_slice_with_nested_segments(self):
        trace = chrome_trace([SPAN_BEGIN, SPAN_END])
        assert trace["displayTimeUnit"] == "ns"
        slices = [e for e in trace["traceEvents"] if e["ph"] == "X"]
        top = [s for s in slices if s["cat"] == "span"]
        segments = [s for s in slices if s["cat"] == "segment"]
        assert len(top) == 1 and len(segments) == 4
        span = top[0]
        assert span["name"] == "read_miss"
        assert span["pid"] == 2 and span["tid"] == 0
        assert span["ts"] == (300 - 180) / 1000.0
        assert span["dur"] == 180 / 1000.0
        assert span["args"]["txn"] == 7
        # Segments tile the span exactly, end to end.
        cursor = span["ts"]
        for segment, (kind, dur) in zip(segments, SPAN_END["segs"]):
            assert segment["name"] == kind
            assert segment["pid"] == 2
            assert segment["ts"] == cursor
            assert segment["dur"] == dur / 1000.0
            assert segment["args"] == {"txn": 7, "dur_ns": dur}
            cursor += dur / 1000.0
        assert cursor == span["ts"] + span["dur"]

    def test_span_begin_emits_no_slice(self):
        trace = chrome_trace([SPAN_BEGIN])
        assert [e["ph"] for e in trace["traceEvents"]] == []

    def test_point_events_become_instants(self):
        trace = chrome_trace([INSTANT])
        instants = [e for e in trace["traceEvents"] if e["ph"] == "i"]
        assert len(instants) == 1
        inst = instants[0]
        assert inst["name"] == "ckpt.begin"
        assert inst["s"] == "p"
        assert inst["ts"] == 0.5
        assert inst["pid"] == -1           # no node: machine track
        assert inst["args"]["epoch"] == 1

    def test_include_instants_false_exports_spans_only(self):
        trace = chrome_trace([SPAN_BEGIN, SPAN_END, INSTANT],
                             include_instants=False)
        assert all(e["ph"] in ("X", "M") for e in trace["traceEvents"])

    def test_process_metadata_names_every_track(self):
        machine_span = dict(SPAN_END, node=-1, **{"class": "ckpt"})
        trace = chrome_trace([SPAN_END, machine_span, INSTANT])
        meta = {e["pid"]: e["args"]["name"]
                for e in trace["traceEvents"] if e["ph"] == "M"}
        assert meta == {-1: "machine", 2: "node 2"}
        assert all(e["name"] == "process_name"
                   for e in trace["traceEvents"] if e["ph"] == "M")


class TestChromeTraceLiveRun:
    def run_one_miss(self):
        sink = RingBufferSink()
        machine = build_tiny_machine()
        machine.install_tracer(Tracer(sink))
        addr = next(a for a in range(0, 1 << 20, machine.config.line_size)
                    if machine.geom_cache.home_node(a) != 0)
        machine.protocol.read(0, addr, at=0)
        return sink.events()

    def test_live_trace_spans_nest_exactly(self):
        trace = chrome_trace(self.run_one_miss())
        spans = [e for e in trace["traceEvents"]
                 if e["ph"] == "X" and e["cat"] == "span"]
        segments = [e for e in trace["traceEvents"]
                    if e["ph"] == "X" and e["cat"] == "segment"]
        assert spans and segments
        for span in spans:
            own = [s for s in segments
                   if s["args"]["txn"] == span["args"]["txn"]]
            assert own[0]["ts"] == span["ts"]
            assert sum(s["dur"] for s in own) == span["dur"]
            assert {s["pid"] for s in own} == {span["pid"]}

    def test_output_is_json_serializable(self, tmp_path):
        events = self.run_one_miss()
        path = str(tmp_path / "out.chrome.json")
        n = write_chrome_trace(events, path)
        with open(path, encoding="utf-8") as handle:
            loaded = json.load(handle)
        assert isinstance(loaded["traceEvents"], list)
        assert len(loaded["traceEvents"]) == n
        assert loaded == chrome_trace(events)

    def test_write_spans_only(self, tmp_path):
        events = self.run_one_miss()
        path = str(tmp_path / "spans.chrome.json")
        write_chrome_trace(events, path, include_instants=False)
        with open(path, encoding="utf-8") as handle:
            loaded = json.load(handle)
        assert all(e["ph"] in ("X", "M") for e in loaded["traceEvents"])
