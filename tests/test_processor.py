"""Unit tests for the processor model."""

import numpy as np
import pytest

from conftest import build_tiny_machine

from repro.cpu.processor import BARRIER_POLL_NS, Processor


def ops_chunk(addrs, writes=None, gaps=None):
    n = len(addrs)
    return ("ops",
            np.asarray(gaps if gaps is not None else [1] * n,
                       dtype=np.int64),
            np.asarray(addrs, dtype=np.int64),
            np.asarray(writes if writes is not None else [False] * n))


class ListWorkload:
    """Workload built from explicit per-processor chunk lists."""

    instructions_per_ref = 2.0

    def __init__(self, streams):
        self.streams = streams
        self.n_procs = len(streams)

    def stream_for(self, proc_id):
        return iter(self.streams[proc_id])


class TestExecution:
    def test_processor_consumes_stream_and_retires(self):
        machine = build_tiny_machine(revive=False)
        addrs = [(1 << 30) + i * 64 for i in range(100)]
        machine.attach_workload(ListWorkload([[ops_chunk(addrs)]]))
        machine.run()
        proc = machine.processors[0]
        assert proc.finished
        assert proc.mem_refs == 100
        assert proc.finish_time > 0

    def test_gaps_advance_time(self):
        machine = build_tiny_machine(revive=False)
        addrs = [(1 << 30)] * 50                  # same line: hits after 1st
        fast = [ops_chunk(addrs, gaps=[1] * 50)]
        machine.attach_workload(ListWorkload([fast]))
        machine.run()
        t_fast = machine.processors[0].finish_time

        machine2 = build_tiny_machine(revive=False)
        slow = [ops_chunk(addrs, gaps=[100] * 50)]
        machine2.attach_workload(ListWorkload([slow]))
        machine2.run()
        assert machine2.processors[0].finish_time > t_fast + 49 * 90

    def test_misses_cost_more_than_hits(self):
        machine = build_tiny_machine(revive=False)
        hits = [ops_chunk([(1 << 30)] * 200)]
        machine.attach_workload(ListWorkload([hits]))
        machine.run()
        t_hits = machine.processors[0].finish_time

        machine2 = build_tiny_machine(revive=False)
        misses = [ops_chunk([(1 << 30) + i * 64 for i in range(200)])]
        machine2.attach_workload(ListWorkload([misses]))
        machine2.run()
        assert machine2.processors[0].finish_time > t_hits

    def test_writes_store_unique_values(self):
        machine = build_tiny_machine(revive=False)
        addrs = [(1 << 30) + i * 64 for i in range(10)]
        machine.attach_workload(
            ListWorkload([[ops_chunk(addrs, writes=[True] * 10)]]))
        machine.run()
        hierarchy = machine.nodes[0].hierarchy
        values = {line.value for line in hierarchy.dirty_lines()}
        assert len(values) == 10

    def test_kill_retires_processor(self):
        machine = build_tiny_machine(revive=False)
        chunks = [ops_chunk([(1 << 30) + i * 64 for i in range(1000)])]
        machine.attach_workload(ListWorkload([chunks]))
        machine.processors[0].kill()
        machine.run()
        assert machine.processors[0].killed
        assert machine.processors[0].mem_refs == 0


class TestBarriers:
    def test_barrier_synchronizes_processors(self):
        machine = build_tiny_machine(revive=False)
        # Proc 0 is fast, proc 1 slow; both hit a barrier, then finish.
        fast = [ops_chunk([(1 << 30)] * 10), ("barrier",),
                ops_chunk([(1 << 30)] * 10)]
        slow = [ops_chunk([(2 << 30)] * 10, gaps=[500] * 10), ("barrier",),
                ops_chunk([(2 << 30)] * 10)]
        machine.attach_workload(ListWorkload([fast, slow]))
        machine.run()
        t0 = machine.processors[0].finish_time
        t1 = machine.processors[1].finish_time
        # The fast processor waited: finish times are close.
        assert abs(t0 - t1) < 2000 + 2 * BARRIER_POLL_NS

    def test_mismatched_barriers_would_deadlock_but_kill_releases(self):
        machine = build_tiny_machine(revive=False)
        fast = [ops_chunk([(1 << 30)] * 5), ("barrier",),
                ops_chunk([(1 << 30)] * 5)]
        stuck = [ops_chunk([(2 << 30)] * 5, gaps=[50_000] * 5),
                 ("barrier",), ops_chunk([(2 << 30)] * 5)]
        machine.attach_workload(ListWorkload([fast, stuck]))
        machine.run(until=20_000)
        machine.processors[1].kill()
        machine.run()           # barrier releases with one participant
        assert machine.processors[0].finished

    def test_warmup_marker_resets_stats_once(self):
        machine = build_tiny_machine(revive=False)
        pre = [ops_chunk([(1 << 30) + i * 64 for i in range(50)])]
        stream = pre + [("warmup_done",)] + \
            [ops_chunk([(1 << 30)] * 10)]
        machine.attach_workload(ListWorkload([stream]))
        machine.run()
        l2 = machine.nodes[0].hierarchy.l2
        # Only the post-warmup accesses remain counted.
        assert l2.hits + l2.misses == 10
        assert machine.processors[0].mem_refs == 10
