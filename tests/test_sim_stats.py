"""Unit tests for counters, histograms, and traffic breakdowns."""

import pytest

from repro.sim.stats import (
    Counter,
    Histogram,
    StatsRegistry,
    TrafficBreakdown,
    TRAFFIC_CATEGORIES,
)


class TestCounter:
    def test_add_and_reset(self):
        c = Counter("x")
        c.add()
        c.add(5)
        assert c.value == 6
        c.reset()
        assert c.value == 0


class TestHistogram:
    def test_bucket_width_validation(self):
        with pytest.raises(ValueError):
            Histogram("h", 0)

    def test_records_and_aggregates(self):
        h = Histogram("h", 10)
        for v in (0, 5, 10, 25, 25):
            h.record(v)
        assert h.count == 5
        assert h.total == 65
        assert h.mean == pytest.approx(13.0)
        assert h.max_value == 25
        assert h.buckets() == [(0, 2), (10, 1), (20, 2)]

    def test_rejects_negative(self):
        h = Histogram("h", 10)
        with pytest.raises(ValueError):
            h.record(-1)

    def test_empty_mean(self):
        assert Histogram("h", 10).mean == 0.0


class TestTrafficBreakdown:
    def test_categories_match_the_paper(self):
        assert TRAFFIC_CATEGORIES == ("RD/RDX", "ExeWB", "CkpWB", "LOG",
                                      "PAR")

    def test_baseline_vs_revive_split(self):
        t = TrafficBreakdown("net")
        t.add("RD/RDX", 100)
        t.add("ExeWB", 50)
        t.add("CkpWB", 30)
        t.add("LOG", 20)
        t.add("PAR", 10)
        assert t.total == 210
        assert t.baseline_total == 150
        assert t.revive_total == 60

    def test_unknown_category_rejected(self):
        t = TrafficBreakdown("net")
        with pytest.raises(KeyError):
            t.add("bogus", 1)

    def test_merge(self):
        a, b = TrafficBreakdown("a"), TrafficBreakdown("b")
        a.add("PAR", 5)
        b.add("PAR", 7)
        b.add("LOG", 1)
        merged = a.merged_with(b)
        assert merged.bytes_by_category["PAR"] == 12
        assert merged.bytes_by_category["LOG"] == 1

    def test_reset(self):
        t = TrafficBreakdown("net")
        t.add("PAR", 5)
        t.reset()
        assert t.total == 0


class TestStatsRegistry:
    def test_counter_identity(self):
        s = StatsRegistry()
        assert s.counter("a") is s.counter("a")
        s.counter("a").add(3)
        assert s.value("a") == 3
        assert s.value("missing") == 0

    def test_log_size_tracking(self):
        s = StatsRegistry()
        s.sample_log_size(10, 100)
        s.sample_log_size(20, 50)
        assert s.max_log_bytes == 100
        assert s.log_size_samples == [(10, 100), (20, 50)]

    def test_snapshot_is_sorted_flat_dict(self):
        s = StatsRegistry()
        s.counter("b").add(2)
        s.counter("a").add(1)
        assert list(s.snapshot()) == ["a", "b"]
