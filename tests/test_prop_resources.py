"""Property-based tests for the calendar resource and the torus."""

from hypothesis import given, settings, strategies as st

from repro.network.topology import Torus2D
from repro.sim.resources import BUCKET_NS, Resource


@settings(max_examples=60, deadline=None)
@given(st.lists(st.tuples(st.integers(0, 50_000), st.integers(1, 100)),
                min_size=1, max_size=300),
       st.integers(1, 8))
def test_acquire_never_starts_before_request(requests, ports):
    r = Resource("r", 10, ports=ports)
    for at, service in requests:
        start = r.acquire(at, service)
        assert start >= at


@settings(max_examples=60, deadline=None)
@given(st.lists(st.tuples(st.integers(0, 20_000), st.integers(1, 60)),
                min_size=1, max_size=200))
def test_busy_time_equals_total_service(requests):
    r = Resource("r", 10)
    for at, service in requests:
        r.acquire(at, service)
    assert r.busy_time == sum(s for _a, s in requests)
    assert r.requests == len(requests)


@settings(max_examples=40, deadline=None)
@given(st.integers(1, 50), st.integers(1, BUCKET_NS))
def test_capacity_is_conserved_per_bucket(n, service):
    """No bucket may ever be booked past its capacity."""
    r = Resource("r", service)
    for _ in range(n):
        r.acquire(0)
    assert all(0 < used <= r._capacity for used in r._buckets.values())
    booked = sum(r._buckets.values())
    assert booked == n * service


@settings(max_examples=40, deadline=None)
@given(st.integers(2, 8), st.integers(2, 8),
       st.integers(0, 63), st.integers(0, 63))
def test_torus_route_is_minimal_and_correct(width, height, a, b):
    t = Torus2D(width, height)
    src, dst = a % t.n_nodes, b % t.n_nodes
    route = t.route(src, dst)
    assert len(route) == t.hops(src, dst)
    node = src
    for link_node, direction in route:
        assert link_node == node
        node = t.neighbor(node, direction)
    assert node == dst
    # Minimality: no dimension detour beyond half the ring.
    assert t.hops(src, dst) <= width // 2 + height // 2


@settings(max_examples=40, deadline=None)
@given(st.integers(2, 8), st.integers(2, 8),
       st.integers(0, 63), st.integers(0, 63))
def test_torus_hops_symmetric(width, height, a, b):
    t = Torus2D(width, height)
    src, dst = a % t.n_nodes, b % t.n_nodes
    assert t.hops(src, dst) == t.hops(dst, src)
