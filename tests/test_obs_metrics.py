"""Tests for repro.obs.metrics and its subsumption of sim.stats.

The registry is the single home for every scalar statistic; the legacy
``StatsRegistry`` is a subclass, so counters collected during a full
``Machine.run()`` must be identical through the legacy accessors and
the metrics API.
"""

from __future__ import annotations

import pytest

from repro.obs.metrics import (Counter, Gauge, Histogram, MetricsRegistry)
from repro.sim.stats import StatsRegistry
from tests.conftest import ToyWorkload, build_tiny_machine


class TestCounter:
    def test_add_and_reset(self):
        counter = Counter("txn.read_miss")
        counter.add()
        counter.add(4)
        assert counter.value == 5
        counter.reset()
        assert counter.value == 0


class TestGauge:
    def test_tracks_maximum(self):
        gauge = Gauge("log.bytes")
        gauge.set(100)
        gauge.set(700)
        gauge.set(300)
        assert gauge.value == 300
        assert gauge.max_value == 700
        gauge.reset()
        assert (gauge.value, gauge.max_value) == (0, 0)


class TestHistogram:
    def test_percentiles_land_on_bucket_lower_edges(self):
        hist = Histogram("ckpt.dur", bucket_width=10)
        for value in range(100):  # one sample per value 0..99
            hist.record(value)
        assert hist.percentile(0) == 0.0
        assert hist.percentile(50) == 40.0   # 50th sample is value 49
        assert hist.percentile(90) == 80.0
        assert hist.percentile(99) == 90.0
        assert hist.percentile(100) == 90.0  # lower edge of last bucket
        assert hist.max_value == 99
        assert hist.mean == pytest.approx(49.5)

    def test_empty_and_single_sample(self):
        hist = Histogram("x", bucket_width=5)
        assert hist.percentile(50) == 0.0
        assert hist.mean == 0.0
        hist.record(13)
        assert hist.percentile(1) == 10.0
        assert hist.percentile(99) == 10.0

    def test_summary_keys(self):
        hist = Histogram("x", bucket_width=1)
        hist.record(3)
        summary = hist.summary()
        assert set(summary) == {"count", "mean", "max", "p50", "p90", "p99"}
        assert summary["count"] == 1 and summary["max"] == 3

    def test_rejects_bad_inputs(self):
        with pytest.raises(ValueError):
            Histogram("x", bucket_width=0)
        hist = Histogram("x", bucket_width=1)
        with pytest.raises(ValueError):
            hist.record(-1)
        with pytest.raises(ValueError):
            hist.percentile(101)


class TestMetricsRegistry:
    def test_get_or_create_returns_same_instance(self):
        registry = MetricsRegistry()
        assert registry.counter("a") is registry.counter("a")
        assert registry.gauge("g") is registry.gauge("g")
        assert registry.histogram("h", 10) is registry.histogram("h")

    def test_kind_collision_raises(self):
        registry = MetricsRegistry()
        registry.counter("metric")
        with pytest.raises(ValueError, match="already registered"):
            registry.gauge("metric")
        with pytest.raises(ValueError, match="already registered"):
            registry.histogram("metric")

    def test_snapshot_is_counters_only_and_sorted(self):
        registry = MetricsRegistry()
        registry.counter("b").add(2)
        registry.counter("a").add(1)
        registry.gauge("g").set(9)
        assert registry.snapshot() == {"a": 1, "b": 2}
        assert list(registry.snapshot()) == ["a", "b"]

    def test_full_snapshot_groups_by_kind(self):
        registry = MetricsRegistry()
        registry.counter("c").add(1)
        registry.gauge("g").set(5)
        registry.histogram("h").record(2)
        snap = registry.full_snapshot()
        assert snap["counters"] == {"c": 1}
        assert snap["gauges"] == {"g": {"value": 5, "max": 5}}
        assert snap["histograms"]["h"]["count"] == 1

    def test_reset_all_keeps_names(self):
        registry = MetricsRegistry()
        registry.counter("c").add(3)
        registry.gauge("g").set(3)
        registry.histogram("h").record(3)
        registry.reset_all()
        assert registry.value("c") == 0
        assert registry.gauge_value("g") == 0
        assert registry.histogram("h").count == 0

    def test_value_of_absent_counter_is_zero(self):
        assert MetricsRegistry().value("nope") == 0
        assert MetricsRegistry().gauge_value("nope") is None


class TestLegacyStatsSubsumption:
    """StatsRegistry is a MetricsRegistry: both views must agree."""

    def test_is_a_metrics_registry(self):
        assert isinstance(StatsRegistry(), MetricsRegistry)

    def test_counters_reconcile_after_full_run(self):
        machine = build_tiny_machine()
        machine.attach_workload(ToyWorkload())
        machine.run()
        stats = machine.stats
        snapshot = stats.snapshot()
        # The run exercised the protocol and ReVive paths.
        assert snapshot["txn.read_miss"] > 0
        assert snapshot["ckpt.count"] >= 1
        # Legacy accessor, metrics accessor, and snapshots all agree.
        for name, value in snapshot.items():
            assert stats.value(name) == value
            assert stats.counter(name).value == value
        assert stats.full_snapshot()["counters"] == snapshot

    def test_log_gauge_mirrors_max_log_bytes(self):
        machine = build_tiny_machine()
        machine.attach_workload(ToyWorkload())
        machine.run()
        stats = machine.stats
        assert stats.max_log_bytes > 0
        assert stats.gauge("log.bytes").max_value == stats.max_log_bytes
        assert stats.max_log_bytes == max(
            nbytes for _t, nbytes in stats.log_size_samples)

    def test_sample_log_size_feeds_both_views(self):
        stats = StatsRegistry()
        stats.sample_log_size(10, 400)
        stats.sample_log_size(20, 300)
        assert stats.log_size_samples == [(10, 400), (20, 300)]
        assert stats.gauge_value("log.bytes") == 300
        assert stats.max_log_bytes == 400
