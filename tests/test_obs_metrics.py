"""Tests for repro.obs.metrics and its subsumption of sim.stats.

The registry is the single home for every scalar statistic; the legacy
``StatsRegistry`` is a subclass, so counters collected during a full
``Machine.run()`` must be identical through the legacy accessors and
the metrics API.
"""

from __future__ import annotations

import pytest

from repro.obs.metrics import (Counter, Gauge, Histogram, LogHistogram,
                               MetricsRegistry)
from repro.sim.stats import StatsRegistry
from tests.conftest import ToyWorkload, build_tiny_machine


class TestCounter:
    def test_add_and_reset(self):
        counter = Counter("txn.read_miss")
        counter.add()
        counter.add(4)
        assert counter.value == 5
        counter.reset()
        assert counter.value == 0


class TestGauge:
    def test_tracks_maximum(self):
        gauge = Gauge("log.bytes")
        gauge.set(100)
        gauge.set(700)
        gauge.set(300)
        assert gauge.value == 300
        assert gauge.max_value == 700
        gauge.reset()
        assert (gauge.value, gauge.max_value) == (0, 0)


class TestHistogram:
    def test_percentiles_land_on_bucket_lower_edges(self):
        hist = Histogram("ckpt.dur", bucket_width=10)
        for value in range(100):  # one sample per value 0..99
            hist.record(value)
        assert hist.percentile(0) == 0.0
        assert hist.percentile(50) == 40.0   # 50th sample is value 49
        assert hist.percentile(90) == 80.0
        assert hist.percentile(99) == 90.0
        assert hist.percentile(100) == 90.0  # lower edge of last bucket
        assert hist.max_value == 99
        assert hist.mean == pytest.approx(49.5)

    def test_empty_and_single_sample(self):
        hist = Histogram("x", bucket_width=5)
        assert hist.percentile(50) == 0.0
        assert hist.mean == 0.0
        hist.record(13)
        assert hist.percentile(1) == 10.0
        assert hist.percentile(99) == 10.0

    def test_summary_keys(self):
        hist = Histogram("x", bucket_width=1)
        hist.record(3)
        summary = hist.summary()
        assert set(summary) == {"count", "mean", "max", "p50", "p90", "p99"}
        assert summary["count"] == 1 and summary["max"] == 3

    def test_rejects_bad_inputs(self):
        with pytest.raises(ValueError):
            Histogram("x", bucket_width=0)
        hist = Histogram("x", bucket_width=1)
        with pytest.raises(ValueError):
            hist.record(-1)
        with pytest.raises(ValueError):
            hist.percentile(101)


class TestLogHistogram:
    def test_small_values_are_exact(self):
        histogram = LogHistogram("lat")
        for v in range(16):
            histogram.record(v)
        assert histogram.buckets() == [(v, 1) for v in range(16)]
        assert histogram.percentile(100) == 15.0

    def test_bucket_relative_width_bounded(self):
        # Upper edge never overstates a sample by more than one
        # sub-bucket width (1/16 = 6.25%) anywhere in the range.
        for v in [16, 17, 100, 1000, 12_345, 10**6, 10**9]:
            histogram = LogHistogram("lat")
            histogram.record(v)
            p99 = histogram.percentile(99)
            assert v <= p99  # upper edge: never understates...
            # ...but max-capping makes a single sample exact.
            assert p99 == v
            histogram.record(v + 1 if v % 2 else v - 1)
            assert histogram.percentile(100) <= max(v + 1, v) * 1.0625

    def test_percentiles_report_upper_edges(self):
        # 100 samples at 1000 and one at 2000: p50 lands in the 1000s
        # bucket and reports its *upper* edge (> 1000), p999 the max.
        histogram = LogHistogram("lat")
        for _ in range(100):
            histogram.record(1000)
        histogram.record(2000)
        assert histogram.percentile(50) >= 1000
        assert histogram.percentile(50) < 1063  # <= 6.25% over
        assert histogram.percentile(99.9) == 2000

    def test_lower_edge_vs_upper_edge_tail_contrast(self):
        # The satellite's motivating defect: a linear Histogram's
        # lower-edge convention reports a tail *below* the slowest
        # observed sample, understating it by up to a bucket width;
        # LogHistogram's upper-edge convention cannot understate.
        linear = Histogram("lat", bucket_width=1000)
        logarithmic = LogHistogram("lat")
        samples = [100] * 99 + [1999]      # worst case sits mid-bucket
        for v in samples:
            linear.record(v)
            logarithmic.record(v)
        assert max(samples) == 1999
        assert linear.percentile(99.9) == 1000     # understates by 999
        assert logarithmic.percentile(99.9) == 1999  # capped at max

    def test_summary_has_p999(self):
        histogram = LogHistogram("lat")
        histogram.record(7)
        summary = histogram.summary()
        assert set(summary) == {"count", "mean", "max",
                                "p50", "p90", "p99", "p999"}
        assert summary["count"] == 1 and summary["p999"] == 7.0

    def test_empty_and_reset(self):
        histogram = LogHistogram("lat")
        assert histogram.percentile(99) == 0.0
        assert histogram.mean == 0.0
        histogram.record(5)
        histogram.reset()
        assert histogram.count == 0 and histogram.buckets() == []

    def test_merge_is_sample_union(self):
        a, b, union = (LogHistogram("a"), LogHistogram("b"),
                       LogHistogram("u"))
        for v in [3, 50, 900]:
            a.record(v)
            union.record(v)
        for v in [7, 50, 40_000]:
            b.record(v)
            union.record(v)
        a.merge(b)
        assert a.buckets() == union.buckets()
        assert a.summary() == union.summary()

    def test_rejects_bad_inputs(self):
        histogram = LogHistogram("lat")
        with pytest.raises(ValueError):
            histogram.record(-1)
        with pytest.raises(ValueError):
            histogram.percentile(101)


class TestMetricsRegistry:
    def test_get_or_create_returns_same_instance(self):
        registry = MetricsRegistry()
        assert registry.counter("a") is registry.counter("a")
        assert registry.gauge("g") is registry.gauge("g")
        assert registry.histogram("h", 10) is registry.histogram("h")

    def test_kind_collision_raises(self):
        registry = MetricsRegistry()
        registry.counter("metric")
        with pytest.raises(ValueError, match="already registered"):
            registry.gauge("metric")
        with pytest.raises(ValueError, match="already registered"):
            registry.histogram("metric")

    def test_snapshot_is_counters_only_and_sorted(self):
        registry = MetricsRegistry()
        registry.counter("b").add(2)
        registry.counter("a").add(1)
        registry.gauge("g").set(9)
        assert registry.snapshot() == {"a": 1, "b": 2}
        assert list(registry.snapshot()) == ["a", "b"]

    def test_full_snapshot_groups_by_kind(self):
        registry = MetricsRegistry()
        registry.counter("c").add(1)
        registry.gauge("g").set(5)
        registry.histogram("h").record(2)
        registry.log_histogram("lat.read_miss").record(80)
        snap = registry.full_snapshot()
        assert snap["counters"] == {"c": 1}
        assert snap["gauges"] == {"g": {"value": 5, "max": 5}}
        assert snap["histograms"]["h"]["count"] == 1
        assert snap["histograms"]["lat.read_miss"]["p999"] == 80.0

    def test_log_histogram_get_or_create_and_kind_collision(self):
        registry = MetricsRegistry()
        histogram = registry.log_histogram("lat.ckpt")
        assert registry.log_histogram("lat.ckpt") is histogram
        with pytest.raises(ValueError):
            registry.counter("lat.ckpt")

    def test_reset_all_covers_log_histograms(self):
        registry = MetricsRegistry()
        registry.log_histogram("lat.x").record(9)
        registry.reset_all()
        assert registry.log_histogram("lat.x").count == 0

    def test_reset_all_keeps_names(self):
        registry = MetricsRegistry()
        registry.counter("c").add(3)
        registry.gauge("g").set(3)
        registry.histogram("h").record(3)
        registry.reset_all()
        assert registry.value("c") == 0
        assert registry.gauge_value("g") == 0
        assert registry.histogram("h").count == 0

    def test_value_of_absent_counter_is_zero(self):
        assert MetricsRegistry().value("nope") == 0
        assert MetricsRegistry().gauge_value("nope") is None


class TestLegacyStatsSubsumption:
    """StatsRegistry is a MetricsRegistry: both views must agree."""

    def test_is_a_metrics_registry(self):
        assert isinstance(StatsRegistry(), MetricsRegistry)

    def test_counters_reconcile_after_full_run(self):
        machine = build_tiny_machine()
        machine.attach_workload(ToyWorkload())
        machine.run()
        stats = machine.stats
        snapshot = stats.snapshot()
        # The run exercised the protocol and ReVive paths.
        assert snapshot["txn.read_miss"] > 0
        assert snapshot["ckpt.count"] >= 1
        # Legacy accessor, metrics accessor, and snapshots all agree.
        for name, value in snapshot.items():
            assert stats.value(name) == value
            assert stats.counter(name).value == value
        assert stats.full_snapshot()["counters"] == snapshot

    def test_log_gauge_mirrors_max_log_bytes(self):
        machine = build_tiny_machine()
        machine.attach_workload(ToyWorkload())
        machine.run()
        stats = machine.stats
        assert stats.max_log_bytes > 0
        assert stats.gauge("log.bytes").max_value == stats.max_log_bytes
        assert stats.max_log_bytes == max(
            nbytes for _t, nbytes in stats.log_size_samples)

    def test_sample_log_size_feeds_both_views(self):
        stats = StatsRegistry()
        stats.sample_log_size(10, 400)
        stats.sample_log_size(20, 300)
        assert stats.log_size_samples == [(10, 400), (20, 300)]
        assert stats.gauge_value("log.bytes") == 300
        assert stats.max_log_bytes == 400
