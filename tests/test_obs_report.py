"""Tests for repro.obs.report: the ``repro report`` dashboard.

Acceptance pins: Figure 11 (log occupancy) and Figure 12 (recovery
breakdown) recomputed from trace + ledger alone must match the
simulator's own statistics bit-for-bit, and Figure 8 overhead rows
recomputed from ledger manifests must match ``SweepResult.overhead_rows``
on the same sweep.
"""

from __future__ import annotations

import json

import pytest

from repro.core.faults import NodeLossFault
from repro.core.recovery import RecoveryManager
from repro.harness.parallel import run_sweep
from repro.machine.config import MachineConfig
from repro.obs import (
    JsonlFileSink,
    Tracer,
    latency_report,
    read_trace,
    span_ends,
)
from repro.obs.report import (
    _bucket_curve,
    build_report,
    gather_runs,
    log_occupancy,
    overhead_rows_from_ledgers,
    render_latency,
    render_report,
)
from tests.conftest import ToyWorkload, build_tiny_machine

SWEEP_KW = dict(scale=0.05, n_procs=4, machine_config=MachineConfig.tiny(4),
                parity_group_size=3, log_bytes_per_node=64 * 1024)


def traced_toy_run(tmp_path, rounds=3):
    path = str(tmp_path / "toy.jsonl")
    machine = build_tiny_machine()
    tracer = Tracer(JsonlFileSink(path))
    machine.install_tracer(tracer)
    machine.attach_workload(ToyWorkload(rounds=rounds))
    machine.run()
    tracer.close()
    return machine, read_trace(path)


def traced_node_loss_run(tmp_path):
    """A traced run that loses node 1 and recovers to epoch 1."""
    path = str(tmp_path / "loss.jsonl")
    tracer = Tracer(JsonlFileSink(path))
    machine = build_tiny_machine()
    machine.install_tracer(tracer)
    machine.attach_workload(ToyWorkload(rounds=6))
    coord = machine.checkpointing
    horizon = 3 * coord.interval_ns
    while coord.checkpoints_committed < 2 and not machine.all_finished:
        machine.run(until=horizon)
        horizon += coord.interval_ns
    detect = coord.commit_times[2] + int(0.8 * coord.interval_ns)
    machine.run(until=detect)
    NodeLossFault(1).apply(machine)
    result = RecoveryManager(machine).recover(detect_time=detect,
                                              lost_node=1, target_epoch=1)
    tracer.close()
    return machine, result, read_trace(path)


class TestFigure11LogOccupancy:
    def test_watermarks_match_simulator_bit_for_bit(self, tmp_path):
        machine, events = traced_toy_run(tmp_path)
        occupancy = log_occupancy(events)
        for node, log in machine.revive.logs.items():
            assert occupancy["per_node_watermark"].get(node, 0) == \
                log.max_bytes_used
        assert occupancy["max_log_bytes"] == machine.revive.max_log_bytes()
        assert occupancy["max_log_bytes"] > 0

    def test_warmup_partitions_the_stream(self, tmp_path):
        _machine, events = traced_toy_run(tmp_path)
        occupancy = log_occupancy(events)
        assert occupancy["warmup_ts"] is not None
        # First-touch logging alone must not set the watermark.
        pre = [e for e in events if e["name"] == "log.append"
               and e["ts"] <= occupancy["warmup_ts"]]
        assert pre                 # warmup did log something, yet...
        assert occupancy["per_node_watermark"]   # ...marks are post-warmup

    def test_curve_spans_the_run(self, tmp_path):
        _machine, events = traced_toy_run(tmp_path)
        curve = log_occupancy(events, curve_points=12)["curve"]
        assert len(curve) == 12
        assert all(b[0] >= a[0] for a, b in zip(curve, curve[1:]))
        assert max(value for _ts, value in curve) > 0


class TestBucketCurve:
    def test_empty_and_degenerate_inputs(self):
        assert _bucket_curve([], 8) == []
        assert _bucket_curve([(5, 10)], 8) == [(5, 10)]
        assert _bucket_curve([(5, 10), (5, 30)], 8) == [(5, 30)]

    def test_per_bucket_maxima(self):
        samples = [(0, 1), (10, 5), (40, 3), (99, 2)]
        curve = _bucket_curve(samples, 2)
        assert curve == [(49, 5), (99, 2)]

    def test_empty_buckets_carry_forward_closing_value(self):
        samples = [(0, 10), (5, 7), (100, 5)]
        curve = _bucket_curve(samples, 4)
        # Buckets 1 and 2 are empty: they hold at bucket 0's closing
        # occupancy (7), not at zero.
        assert [value for _ts, value in curve] == [10, 7, 7, 5]


class TestFigure12Recovery:
    def test_report_matches_recovery_result_bit_for_bit(self, tmp_path):
        _machine, result, events = traced_node_loss_run(tmp_path)
        report = build_report([{"name": "loss", "events": events,
                                "ledger": None}])
        (run,) = report["runs"]
        live = dict(result.breakdown(),
                    background_repair=result.phase4_background_ns)
        assert run["recovery"] == live
        recovery = run["verdicts"]["recovery"]
        assert recovery["recoveries"] == recovery["completed"] == 1
        assert run["healthy"]

    def test_rendered_dashboard_shows_the_breakdown(self, tmp_path):
        _machine, _result, events = traced_node_loss_run(tmp_path)
        report = build_report([{"name": "loss", "events": events,
                                "ledger": None}])
        text = render_report(report)
        assert "Figure 12" in text
        assert "log rebuild" in text and "rollback" in text


class TestOverheadRowsFromLedgers:
    @pytest.fixture(scope="class")
    def traced_sweep(self, tmp_path_factory):
        trace_dir = str(tmp_path_factory.mktemp("sweep"))
        sweep = run_sweep(["lu"], ["baseline", "cp_parity"], serial=True,
                          trace_dir=trace_dir, **SWEEP_KW)
        return sweep, trace_dir

    def test_rows_match_sweep_result_bit_for_bit(self, traced_sweep):
        sweep, _trace_dir = traced_sweep
        assert overhead_rows_from_ledgers(sweep.ledgers) == \
            sweep.overhead_rows()

    def test_rows_from_files_alone(self, traced_sweep):
        sweep, trace_dir = traced_sweep
        runs = gather_runs([trace_dir])
        assert [run["name"] for run in runs] == \
            [f"{app}__{variant}" for app, variant in sweep.job_order]
        report = build_report(runs)
        assert report["overhead_rows"] == sweep.overhead_rows()
        assert all(run["ledger"] is not None for run in report["runs"])

    def test_report_is_jsonable_and_renders(self, traced_sweep):
        _sweep, trace_dir = traced_sweep
        report = build_report(gather_runs([trace_dir]))
        blob = json.dumps(report, sort_keys=True)
        assert "Figure 8" in render_report(json.loads(blob))

    def test_missing_baseline_raises(self):
        ledgers = [{"app": "lu", "variant": "cp_parity",
                    "result": {"execution_time_ns": 100}}]
        with pytest.raises(ValueError, match="baseline"):
            overhead_rows_from_ledgers(ledgers)

    def test_resultless_manifests_are_skipped(self):
        ledgers = [
            {"app": "lu", "variant": "baseline",
             "result": {"execution_time_ns": 100}},
            {"app": "lu", "variant": "cp_parity",
             "result": {"execution_time_ns": 150}},
            {"app": "lu", "variant": "cp_only", "result": None},
        ]
        (row,) = overhead_rows_from_ledgers(ledgers)
        assert row == {"app": "lu", "baseline_ns": 100,
                       "cp_parity": 150 / 100 - 1.0}


class TestLatencyReport:
    def test_report_matches_live_histograms_bit_for_bit(self, tmp_path):
        # The acceptance pin: percentiles recomputed from the trace
        # alone equal the machine's live ``lat.*`` histograms (which
        # include warmup — neither side resets).
        machine, events = traced_toy_run(tmp_path)
        report = latency_report(events)
        assert report["total_spans"] == len(span_ends(events)) > 0
        for cls, digest in report["classes"].items():
            live = machine.stats.log_histogram("lat." + cls).summary()
            assert {k: digest[k] for k in live} == live, cls

    def test_attribution_shares_are_normalized(self, tmp_path):
        from repro.obs import SEGMENTS
        _machine, events = traced_toy_run(tmp_path)
        for digest in latency_report(events)["classes"].values():
            for table in (digest["attribution"],
                          digest["tail_attribution"]):
                assert set(table) <= set(SEGMENTS)
                assert abs(sum(table.values()) - 1.0) < 1e-9

    def test_dashboard_carries_and_renders_the_tables(self, tmp_path):
        _machine, events = traced_toy_run(tmp_path)
        report = build_report([{"name": "toy", "events": events,
                                "ledger": None}])
        (run,) = report["runs"]
        assert run["latency"]["classes"]
        text = render_report(report)
        assert "transaction latency" in text
        assert "critical-path attribution" in text
        assert "read_miss" in text

    def test_spanless_run_renders_without_latency_section(self):
        report = build_report([{"name": "empty", "events": [],
                                "ledger": None}])
        (run,) = report["runs"]
        assert run["latency"] is None
        assert "transaction latency" not in render_report(report)
        assert "no span events" in render_latency(
            latency_report([]))

    def test_serial_and_parallel_sweeps_agree_exactly(
            self, tmp_path_factory):
        reports = []
        for serial in (True, False):
            trace_dir = str(tmp_path_factory.mktemp(
                f"sweep_{'serial' if serial else 'parallel'}"))
            run_sweep(["lu"], ["baseline", "cp_parity"], serial=serial,
                      trace_dir=trace_dir, **SWEEP_KW)
            reports.append({
                run["name"]: latency_report(run["events"])
                for run in gather_runs([trace_dir])})
        serial_report, parallel_report = reports
        assert serial_report == parallel_report
        assert all(r["total_spans"] > 0 for r in serial_report.values())


class TestGatherRuns:
    def test_single_file_with_sibling_ledger(self, tmp_path):
        _machine, _events = traced_toy_run(tmp_path)
        (run,) = gather_runs([str(tmp_path / "toy.jsonl")])
        assert run["name"] == "toy"
        assert run["events"]
        assert run["ledger"] is None        # no sibling ledger written

    def test_directory_without_merged_ledger_sorts_by_name(self, tmp_path):
        for name in ("b", "a"):
            (tmp_path / f"{name}.jsonl").write_text("")
        runs = gather_runs([str(tmp_path)])
        assert [run["name"] for run in runs] == ["a", "b"]

    def test_empty_report_renders_placeholder(self):
        assert render_report(build_report([])) == "report: no runs"
