"""The five race-condition classes of Section 4.2, exercised directly.

Each scenario injects a fault *between* the ordered steps of the
ReVive update protocols and checks that recovery still restores the
checkpoint state.  The ordering guarantees under test:

* Log-Data Update Race — data (and its parity) are written only after
  the log entry and its parity are safe.
* Atomic Log Update Race — an entry is valid only once its Marker word
  is written; a torn entry is ignored.
* Log-Parity Update Race — losing either the log entry or its parity
  mid-update is recoverable (the stale decode is filtered or the
  unnecessary-but-correct restore happens).
* Data-Parity Update Race — a lost data write after a completed log
  update is restored from the log.
* Checkpoint Commit Race — a checkpoint only counts once *every* node
  holds its durable commit record.
"""

import pytest

from conftest import build_tiny_machine

from repro.core.recovery import RecoveryManager


@pytest.fixture
def machine():
    return build_tiny_machine()


def mapped_line(machine, node=1, offset=0, value=0):
    vaddr = (node + 1) * (1 << 30) + offset
    line = machine.addr_space.translate_line(vaddr, node)
    if value:
        machine.nodes[node].memory.write_line(line, value)
        machine.revive.parity.apply_update(line, 0, value)
    return line


class TestLogDataUpdateRace:
    def test_data_unwritten_until_log_safe(self, machine):
        """Fault after the log write, before the data write: the data
        (and its parity) still hold the checkpoint value."""
        node = machine.nodes[1]
        line = mapped_line(machine, value=111)
        log = machine.revive.logs[1]
        # Perform ONLY the log half of Figure 5(b).
        writes = log.make_writes(line, node.memory.read_line(line),
                                 node.memory.read_line)
        for mem_line, content in writes:
            old = node.memory.read_line(mem_line)
            node.memory.write_line(mem_line, content)
            machine.revive.parity.apply_update(mem_line, old, content)
        log.commit_append(line)
        # Error strikes before D' lands: memory is untouched and the
        # parity invariant holds — nothing to recover for this line.
        assert node.memory.read_line(line) == 111
        assert machine.revive.parity.check_all_parity() == []


class TestAtomicLogUpdateRace:
    def test_torn_entry_without_marker_is_ignored(self, machine):
        node = machine.nodes[1]
        line = mapped_line(machine, value=5)
        log = machine.revive.logs[1]
        writes = log.make_writes(line, 999_999, node.memory.read_line)
        entry_write, marker_write = writes
        # Crash between the entry-line write and the marker write.
        old = node.memory.read_line(entry_write[0])
        node.memory.write_line(entry_write[0], entry_write[1])
        machine.revive.parity.apply_update(entry_write[0], old,
                                           entry_write[1])
        # The torn record must not decode.
        entries = log.decode_region(node.memory.read_line)
        assert all(e.value != 999_999 for e in entries)

    def test_marker_makes_entry_visible(self, machine):
        node = machine.nodes[1]
        line = mapped_line(machine, value=5)
        log = machine.revive.logs[1]
        writes = log.make_writes(line, 999_999, node.memory.read_line)
        for mem_line, content in writes:
            node.memory.write_line(mem_line, content)
        entries = log.decode_region(node.memory.read_line)
        assert any(e.value == 999_999 for e in entries)


class TestLogParityUpdateRace:
    def test_lost_log_entry_rebuilds_to_stale_invalid_state(self, machine):
        """Entry written, parity not yet: losing the node rebuilds the
        pre-entry (stale) log line, whose marker does not validate the
        new record — and the data is still intact in memory."""
        node = machine.nodes[1]
        line = mapped_line(machine, value=7)
        log = machine.revive.logs[1]
        writes = log.make_writes(line, 7, node.memory.read_line)
        entry_line = writes[0][0]
        # Write the entry and marker WITHOUT updating their parity.
        for mem_line, content in writes:
            node.memory.write_line(mem_line, content)
        # Node 1 is lost; parity reconstructs the PRE-update contents.
        rebuilt_entry = machine.revive.parity.reconstruct_line(entry_line)
        assert rebuilt_entry != 7 or rebuilt_entry == 0
        meta_line = writes[1][0]
        rebuilt_meta = machine.revive.parity.reconstruct_line(meta_line)
        node.memory.write_line(entry_line, rebuilt_entry)
        node.memory.write_line(meta_line, rebuilt_meta)
        entries = log.decode_region(node.memory.read_line)
        assert entries == []          # record invisible; D intact
        assert node.memory.read_line(line) == 7


class TestDataParityUpdateRace:
    def test_lost_data_write_restored_from_log(self, machine):
        """Log fully safe; the data write is lost with the node.  The
        rebuilt page may hold any torn state — rollback restores the
        checkpoint value from the log."""
        node = machine.nodes[1]
        line = mapped_line(machine, value=31)
        # Complete, ordered ReVive write.
        machine.revive.on_memory_write(1, line, 42, at=0,
                                       category="ExeWB")
        assert node.memory.read_line(line) == 42
        log = machine.revive.logs[1]
        entries = log.entries_to_undo(0, 0, node.memory.read_line)
        assert entries[0].addr == line and entries[0].value == 31
        # Apply the rollback: the checkpoint content returns.
        node.memory.write_line(line, entries[0].value)
        assert node.memory.read_line(line) == 31


class TestCheckpointCommitRace:
    def test_partial_commit_rolls_back_to_previous(self, machine):
        """If some nodes marked checkpoint N and others did not, the
        two-phase commit evidence says N is NOT established and
        recovery targets N-1."""
        from conftest import ToyWorkload

        machine.attach_workload(ToyWorkload(rounds=6))
        coord = machine.checkpointing
        horizon = 3 * coord.interval_ns
        while coord.checkpoints_committed < 2 and not machine.all_finished:
            machine.run(until=horizon)
            horizon += coord.interval_ns
        committed = coord.checkpoints_committed
        manager = RecoveryManager(machine)
        assert manager.determine_committed_epoch() == committed

        # Simulate a torn commit: one node appends record N+1, the
        # others never do (error struck between the two barriers).
        log = machine.revive.logs[0]
        log.advance_epoch()
        machine.revive.append_commit_record(0, at=machine.simulator.now)
        assert manager.determine_committed_epoch() == committed
