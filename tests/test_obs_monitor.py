"""Tests for repro.obs.monitor: streaming monitors and the run ledger.

The load-bearing guarantee (docs/OBSERVABILITY.md): monitors mirror
the simulator's warmup semantics, so their final verdicts agree
bit-for-bit with the simulator's own steady-state statistics — pinned
here against live machine state after a traced toy run.
"""

from __future__ import annotations

import json

import pytest

from repro.cpu.processor import FASTPATH_DEFAULT
from repro.obs import (
    LEDGER_VERSION,
    SCHEMA_VERSION,
    CheckpointCadenceMonitor,
    LogOccupancyMonitor,
    MemTrafficMonitor,
    Monitor,
    MonitorSuite,
    RecoveryMonitor,
    RingBufferSink,
    RunLedger,
    SpanLatencyMonitor,
    Tracer,
    TrafficRateMonitor,
    attach_monitors,
    default_monitors,
    read_ledger,
)
from tests.conftest import ToyWorkload, build_tiny_machine


def ev(seq, name, ts=0, **fields):
    """A schema-shaped event for feeding monitors directly."""
    return dict({"v": SCHEMA_VERSION, "seq": seq, "ts": ts,
                 "cat": name.split(".")[0], "name": name}, **fields)


class TestMonitorSuite:
    def test_tees_events_to_monitors_and_wrapped_sink(self):
        sink = RingBufferSink()
        monitor = LogOccupancyMonitor()
        tracer = Tracer(MonitorSuite([monitor], sink=sink))
        tracer.emit(5, "log", "log.append", node=0, slot=0, epoch=1,
                    line=64, commit=False, bytes_used=72)
        assert [e["name"] for e in sink.events()] == ["log.append"]
        assert monitor.watermark == {0: 72}

    def test_sinkless_suite_monitors_without_writing(self):
        monitor = LogOccupancyMonitor()
        suite = MonitorSuite([monitor])
        tracer = Tracer(suite)
        assert tracer.enabled           # a suite is a sink
        tracer.emit(1, "log", "log.append", node=2, slot=0, epoch=1,
                    line=0, commit=False, bytes_used=10)
        suite.close()                   # no wrapped sink: a no-op
        assert monitor.watermark == {2: 10}
        assert suite.paths() == []

    def test_duplicate_monitor_names_rejected(self):
        with pytest.raises(ValueError, match="duplicate monitor names"):
            MonitorSuite([RecoveryMonitor(), RecoveryMonitor()])

    def test_verdicts_keyed_by_monitor_name(self):
        suite = MonitorSuite(default_monitors())
        verdicts = suite.verdicts()
        assert set(verdicts) == {"log_occupancy", "checkpoint_cadence",
                                 "traffic_rate", "recovery", "mem_traffic",
                                 "span_latency"}
        assert all("healthy" in v for v in verdicts.values())
        assert suite.healthy

    def test_attach_monitors_wraps_existing_sink(self):
        sink = RingBufferSink()
        tracer = Tracer(sink)
        monitor = RecoveryMonitor()
        suite = attach_monitors(tracer, [monitor])
        assert tracer.sink is suite and suite.sink is sink
        tracer.emit(9, "recovery", "recovery.begin", lost_node=1)
        assert len(sink.events()) == 1
        assert monitor.recoveries == 1

    def test_attach_monitors_enables_sinkless_tracer(self):
        tracer = Tracer(sink=None)
        assert not tracer.enabled
        attach_monitors(tracer, [RecoveryMonitor()])
        assert tracer.enabled


class TestLogOccupancyMonitor:
    def append(self, seq, node, used, ts=0):
        return ev(seq, "log.append", ts=ts, node=node, slot=0, epoch=1,
                  line=0, commit=False, bytes_used=used)

    def test_tracks_occupancy_and_watermark(self):
        monitor = LogOccupancyMonitor()
        monitor.observe(self.append(0, 0, 100))
        monitor.observe(self.append(1, 0, 300))
        monitor.observe(ev(2, "log.reclaim", node=0, slots=2,
                           oldest_epoch=1, bytes_used=50))
        monitor.observe(self.append(3, 1, 200))
        verdict = monitor.verdict()
        assert monitor.occupancy == {0: 50, 1: 200}
        assert verdict["watermark_bytes"] == {0: 300, 1: 200}
        assert verdict["max_watermark_bytes"] == 300
        assert verdict["healthy"]

    def test_one_alert_per_excursion_with_rearm(self):
        monitor = LogOccupancyMonitor(capacity_bytes=1000,
                                      high_water_fraction=0.9)
        monitor.observe(self.append(0, 0, 950, ts=10))   # crosses: alert
        monitor.observe(self.append(1, 0, 980, ts=20))   # still up: no new
        monitor.observe(ev(2, "log.reclaim", ts=30, node=0, slots=9,
                           oldest_epoch=1, bytes_used=100))  # re-arms
        monitor.observe(self.append(3, 0, 960, ts=40))   # crosses again
        verdict = monitor.verdict()
        assert [a["ts"] for a in verdict["high_water_alerts"]] == [10, 40]
        assert not verdict["healthy"]

    def test_warmup_resets_watermark_not_occupancy(self):
        monitor = LogOccupancyMonitor()
        monitor.observe(self.append(0, 0, 400))
        monitor.observe(ev(1, "sim.warmup_done"))
        assert monitor.occupancy == {0: 400}
        assert monitor.verdict()["watermark_bytes"] == {}
        monitor.observe(self.append(2, 0, 410))
        assert monitor.verdict()["watermark_bytes"] == {0: 410}

    def test_rejects_bad_fraction(self):
        with pytest.raises(ValueError):
            LogOccupancyMonitor(capacity_bytes=100, high_water_fraction=0.0)


class TestCheckpointCadenceMonitor:
    def commit(self, seq, ts, epoch=1):
        return ev(seq, "ckpt.commit", ts=ts, epoch=epoch, dur_ns=100)

    def test_regular_cadence_is_healthy(self):
        monitor = CheckpointCadenceMonitor(interval_ns=1000)
        for i, ts in enumerate([1000, 2100, 3050]):
            monitor.observe(self.commit(i, ts))
        verdict = monitor.verdict()
        assert verdict["healthy"]
        assert verdict["commits"] == 3
        assert verdict["mean_gap_ns"] == pytest.approx(1025.0)
        assert verdict["min_gap_ns"] == 950
        assert verdict["max_gap_ns"] == 1100

    def test_short_gap_is_an_excursion(self):
        monitor = CheckpointCadenceMonitor(interval_ns=1000, tolerance=0.5)
        monitor.observe(self.commit(0, 1000))
        monitor.observe(self.commit(1, 1300, epoch=2))  # gap 300 < 500
        verdict = monitor.verdict()
        assert not verdict["healthy"]
        assert verdict["excursions"] == [
            {"epoch": 2, "ts": 1300, "gap_ns": 300}]

    def test_without_interval_is_informational(self):
        monitor = CheckpointCadenceMonitor()       # CpInf: no cadence
        monitor.observe(self.commit(0, 100))
        monitor.observe(self.commit(1, 100_000))
        assert monitor.verdict()["healthy"]

    def test_rejects_bad_tolerance(self):
        with pytest.raises(ValueError):
            CheckpointCadenceMonitor(interval_ns=1000, tolerance=0)


class TestTrafficRateMonitor:
    def test_counts_and_rates_per_node(self):
        monitor = TrafficRateMonitor()
        for seq, (node, ts) in enumerate([(0, 0), (0, 500), (1, 1000)]):
            monitor.observe(ev(seq, "coh.transition", ts=ts, node=node,
                               line=0, state="M", owner=node, sharers=[]))
        monitor.observe(ev(3, "log.append", ts=2000, node=1, slot=0,
                           epoch=1, line=0, commit=False, bytes_used=10))
        verdict = monitor.verdict()
        assert verdict["coh_events"] == {0: 2, 1: 1}
        assert verdict["log_events"] == {1: 1}
        assert verdict["span_ns"] == 2000
        assert verdict["coh_per_us"] == {0: 1.0, 1: 0.5}
        assert verdict["coh_max_over_mean"] == pytest.approx(4 / 3)
        assert verdict["healthy"]

    def test_imbalance_limit_flags_hot_node(self):
        monitor = TrafficRateMonitor(max_over_mean_limit=1.2)
        for seq in range(9):
            monitor.observe(ev(seq, "coh.transition", ts=seq * 10, node=0,
                               line=0, state="M", owner=0, sharers=[]))
        monitor.observe(ev(9, "coh.transition", ts=90, node=1,
                           line=0, state="M", owner=1, sharers=[]))
        assert not monitor.verdict()["healthy"]


class TestRecoveryMonitor:
    def test_begun_but_unfinished_recovery_is_unhealthy(self):
        monitor = RecoveryMonitor()
        monitor.observe(ev(0, "recovery.begin", lost_node=1))
        assert not monitor.healthy
        monitor.observe(ev(1, "recovery.phase_begin", ts=100,
                           phase="log_rebuild"))
        monitor.observe(ev(2, "recovery.phase_end", ts=350,
                           phase="log_rebuild", dur_ns=250))
        monitor.observe(ev(3, "recovery.end", ts=400, target_epoch=1,
                           lost_work_ns=77, entries_undone=5,
                           resume_time=400))
        verdict = monitor.verdict()
        assert verdict["healthy"]
        assert verdict["recoveries"] == verdict["completed"] == 1
        assert verdict["phase_ns"] == {"log_rebuild": 250}
        assert verdict["lost_work_ns"] == 77
        assert verdict["entries_undone"] == 5


class TestMemTrafficMonitor:
    def batch(self, seq, node, **over):
        fields = dict(refs=100, l1_hits=80, l1_misses=20, l2_hits=15,
                      l2_misses=5, remote=3)
        fields.update(over)
        return ev(seq, "mem.batch", node=node, **fields)

    def test_accumulates_per_node_and_rates(self):
        monitor = MemTrafficMonitor()
        monitor.observe(self.batch(0, 0))
        monitor.observe(self.batch(1, 0))
        monitor.observe(self.batch(2, 1, refs=50, l1_hits=50, l1_misses=0,
                                   l2_hits=0, l2_misses=0, remote=0))
        verdict = monitor.verdict()
        assert verdict["batches"] == 3
        assert verdict["per_node"][0]["refs"] == 200
        assert verdict["totals"]["refs"] == 250
        assert verdict["l1_hit_rate"] == pytest.approx(210 / 250)
        assert verdict["l2_hit_rate"] == pytest.approx(30 / 40)
        assert verdict["remote_fraction"] == pytest.approx(6 / 250)

    def test_warmup_resets_totals(self):
        monitor = MemTrafficMonitor()
        monitor.observe(self.batch(0, 0))
        monitor.observe(ev(1, "sim.warmup_done"))
        monitor.observe(self.batch(2, 0, refs=10, l1_hits=10, l1_misses=0,
                                   l2_hits=0, l2_misses=0, remote=0))
        verdict = monitor.verdict()
        assert verdict["totals"]["refs"] == 10
        assert verdict["l1_hit_rate"] == 1.0

    def test_no_mem_events_leaves_rates_undefined(self):
        verdict = MemTrafficMonitor().verdict()
        assert verdict["healthy"]
        assert verdict["l1_hit_rate"] is None
        assert verdict["remote_fraction"] is None


class TestSpanLatencyMonitor:
    def span_end(self, seq, txn, cls, dur, ts=None):
        return ev(seq, "span.end", ts=dur if ts is None else ts,
                  txn=txn, node=0, dur_ns=dur,
                  segs=[["net", dur]], **{"class": cls})

    def test_digests_per_class(self):
        monitor = SpanLatencyMonitor()
        monitor.observe(self.span_end(0, 0, "read_miss", 100))
        monitor.observe(self.span_end(1, 1, "read_miss", 200))
        monitor.observe(self.span_end(2, 2, "writeback", 50))
        verdict = monitor.verdict()
        assert verdict["healthy"]
        assert verdict["classes"]["read_miss"]["count"] == 2
        assert verdict["classes"]["writeback"]["max"] == 50
        assert list(verdict["classes"]) == ["read_miss", "writeback"]

    def test_high_water_alert(self):
        monitor = SpanLatencyMonitor(high_water_ns={"read_miss": 150})
        monitor.observe(self.span_end(0, 0, "read_miss", 150))  # at limit
        monitor.observe(self.span_end(1, 1, "read_miss", 151))  # over
        monitor.observe(self.span_end(2, 2, "writeback", 9999))  # no limit
        verdict = monitor.verdict()
        assert not verdict["healthy"]
        assert verdict["alerts_total"] == 1
        assert verdict["alerts"] == [{"class": "read_miss", "txn": 1,
                                      "ts": 151, "dur_ns": 151}]

    def test_alert_list_capped_count_exact(self):
        monitor = SpanLatencyMonitor(high_water_ns={"upgrade": 0},
                                     max_alerts=2)
        for i in range(5):
            monitor.observe(self.span_end(i, i, "upgrade", 10 + i))
        verdict = monitor.verdict()
        assert len(verdict["alerts"]) == 2
        assert verdict["alerts_total"] == 5

    def test_ignores_non_span_events_and_warmup(self):
        monitor = SpanLatencyMonitor()
        monitor.observe(self.span_end(0, 0, "ckpt", 500))
        monitor.observe(ev(1, "sim.warmup_done", ts=600))
        monitor.observe(ev(2, "log.append", ts=700, node=0, slot=0,
                           epoch=1, line=0, commit=False, bytes_used=8))
        # Latency digests survive the warmup marker (live lat.*
        # histograms are never reset either).
        assert monitor.verdict()["classes"]["ckpt"]["count"] == 1


class TestLiveRunAgreement:
    """Monitors on a live traced run equal the simulator's own stats."""

    @pytest.fixture(scope="class")
    def monitored_run(self):
        machine = build_tiny_machine()
        suite = MonitorSuite(default_monitors(
            interval_ns=machine.checkpointing.interval_ns,
            log_capacity_bytes=64 * 1024))
        machine.install_tracer(Tracer(suite))
        machine.attach_workload(ToyWorkload(rounds=3))
        machine.run()
        return machine, suite

    def test_log_watermarks_match_simulator_bit_for_bit(self, monitored_run):
        machine, suite = monitored_run
        verdict = suite.verdicts()["log_occupancy"]
        for node, log in machine.revive.logs.items():
            assert verdict["watermark_bytes"].get(node, 0) == \
                log.max_bytes_used
        assert verdict["max_watermark_bytes"] == \
            machine.revive.max_log_bytes()

    def test_checkpoint_commits_match_coordinator(self, monitored_run):
        machine, suite = monitored_run
        verdict = suite.verdicts()["checkpoint_cadence"]
        assert verdict["commits"] == \
            machine.checkpointing.checkpoints_committed
        assert verdict["commits"] > 0

    @pytest.mark.skipif(not FASTPATH_DEFAULT,
                        reason="mem.batch events are fast-path only")
    def test_mem_totals_match_cache_counters_bit_for_bit(self,
                                                         monitored_run):
        machine, suite = monitored_run
        per_node = suite.verdicts()["mem_traffic"]["per_node"]
        for node_id, node in enumerate(machine.nodes):
            totals = per_node.get(node_id)
            assert totals is not None
            assert totals["l1_hits"] == node.hierarchy.l1.hits
            assert totals["l1_misses"] == node.hierarchy.l1.misses
            assert totals["l2_hits"] == node.hierarchy.l2.hits
            assert totals["l2_misses"] == node.hierarchy.l2.misses
        for proc in machine.processors:
            assert per_node[proc.node_id]["refs"] == proc.mem_refs
        assert suite.verdicts()["mem_traffic"]["totals"]["refs"] == \
            machine.total_mem_refs()

    def test_span_digests_match_live_histograms_bit_for_bit(
            self, monitored_run):
        machine, suite = monitored_run
        monitor = next(m for m in suite.monitors
                       if isinstance(m, SpanLatencyMonitor))
        assert monitor.by_class        # the run produced spans
        for cls, histogram in monitor.by_class.items():
            live = machine.stats.log_histogram("lat." + cls)
            assert histogram.summary() == live.summary(), cls
            assert histogram.buckets() == live.buckets(), cls

    def test_healthy_run_verdicts_are_jsonable(self, monitored_run):
        _machine, suite = monitored_run
        assert suite.healthy
        json.dumps(suite.verdicts())      # must not raise


class TestRunLedger:
    ARGS = {"scale": 0.05, "n_procs": 4, "interval_ns": 50_000}

    def test_digest_is_stable_and_order_insensitive(self):
        a = RunLedger("lu", "cp_parity", run_args=self.ARGS, seed=105)
        b = RunLedger("lu", "cp_parity", seed=105,
                      run_args=dict(reversed(list(self.ARGS.items()))))
        assert a.config_digest() == b.config_digest()

    @pytest.mark.parametrize("change", [
        dict(app="fft"), dict(variant="baseline"), dict(seed=7),
        dict(run_args={"scale": 0.1})])
    def test_digest_is_sensitive_to_config(self, change):
        base = dict(app="lu", variant="cp_parity", run_args=self.ARGS,
                    seed=105)
        assert RunLedger(**base).config_digest() != \
            RunLedger(**dict(base, **change)).config_digest()

    def test_finalize_without_result_or_monitors(self):
        ledger = RunLedger("lu", "cp_parity", seed=105)
        manifest = ledger.finalize()
        assert manifest["ledger_version"] == LEDGER_VERSION
        assert manifest["schema_version"] == SCHEMA_VERSION
        assert manifest["result"] is None
        assert manifest["verdicts"] == {}
        assert manifest["healthy"]
        assert manifest["events_emitted"] is None

    def test_manifest_carries_results_and_verdicts(self):
        suite = MonitorSuite([RecoveryMonitor()])
        tracer = Tracer(suite)
        tracer.emit(0, "recovery", "recovery.begin", lost_node=1)
        ledger = RunLedger("lu", "cp_parity", run_args=self.ARGS, seed=105)
        manifest = ledger.finalize(monitors=suite, tracer=tracer)
        assert manifest["events_emitted"] == 1
        assert manifest["verdicts"]["recovery"]["recoveries"] == 1
        assert not manifest["healthy"]    # recovery begun, never ended

    def test_manifest_has_no_wall_clock_fields(self):
        manifest = RunLedger("lu", "cp_parity", run_args=self.ARGS,
                             seed=105).finalize()
        assert set(manifest) == {
            "ledger_version", "schema_version", "app", "variant", "seed",
            "config_digest", "run_args", "events_emitted", "result",
            "verdicts", "healthy"}

    def test_write_requires_finalize(self, tmp_path):
        with pytest.raises(RuntimeError, match="finalize"):
            RunLedger("lu", "cp_parity").write(str(tmp_path / "l.json"))

    def test_write_read_round_trip(self, tmp_path):
        path = str(tmp_path / "run.ledger.json")
        ledger = RunLedger("lu", "cp_parity", run_args=self.ARGS, seed=105)
        manifest = ledger.finalize()
        ledger.write(path)
        assert read_ledger(path) == manifest

    def test_canonicalisation_handles_machine_config(self):
        from repro.machine.config import MachineConfig

        args = {"machine_config": MachineConfig.tiny(4), "scale": 0.05}
        a = RunLedger("lu", "cp_parity", run_args=args, seed=1)
        b = RunLedger("lu", "cp_parity", run_args=dict(args), seed=1)
        assert a.config_digest() == b.config_digest()
        json.dumps(a.run_args)            # canonical form is JSON-able
