"""Unit tests for the Splash-2 analog registry."""

import pytest

from repro.workloads.registry import APP_NAMES, get_workload, paper_reference
from repro.workloads.splash2 import PAPER_TABLE4, SPLASH2_SPECS


class TestRegistry:
    def test_twelve_applications(self):
        assert len(APP_NAMES) == 12
        assert set(APP_NAMES) == set(PAPER_TABLE4)
        assert set(APP_NAMES) == set(SPLASH2_SPECS)

    def test_lookup(self):
        w = get_workload("radix")
        assert w.name == "radix"
        assert w.n_procs == 16

    def test_unknown_name(self):
        with pytest.raises(KeyError):
            get_workload("quake")
        with pytest.raises(KeyError):
            paper_reference("quake")

    def test_scale(self):
        base = get_workload("lu")
        scaled = get_workload("lu", scale=0.5)
        assert scaled.spec.refs_per_proc \
            == pytest.approx(base.spec.refs_per_proc * 0.5, abs=1)

    def test_n_procs_override(self):
        w = get_workload("fft", n_procs=4)
        assert w.n_procs == 4
        # Streams still generate for every processor.
        assert next(iter(w.stream_for(3)))[0] == "ops"

    def test_paper_reference_is_a_copy(self):
        ref = paper_reference("ocean")
        ref["l2_miss_pct"] = 0.0
        assert paper_reference("ocean")["l2_miss_pct"] == 2.02


class TestSpecShapes:
    def test_run_lengths_track_instruction_counts(self):
        refs = {name: spec.refs_per_proc
                for name, spec in SPLASH2_SPECS.items()}
        instr = {name: ref["instructions_M"]
                 for name, ref in PAPER_TABLE4.items()}
        # Longer paper runs -> longer analog runs (exact ordering).
        by_refs = sorted(refs, key=refs.get)
        by_instr = sorted(instr, key=instr.get)
        assert by_refs == by_instr

    def test_l2_overflow_trio_has_big_footprints(self):
        for app in ("fft", "ocean", "radix"):
            spec = SPLASH2_SPECS[app]
            # Transpose visits a different shard each phase, so its
            # effective footprint spans the whole shared region.
            shared = (spec.shared_lines if spec.sharing == "transpose"
                      else spec.shared_lines // 16)
            footprint = spec.stream_lines + shared
            assert footprint * 64 > 32 * 1024, app   # exceeds bench L2

    def test_waters_are_compute_bound(self):
        for app in ("water-n2", "water-sp"):
            spec = SPLASH2_SPECS[app]
            assert spec.stream_lines == 0
            assert spec.burst_every > 0

    def test_every_spec_uses_16_processors(self):
        assert all(s.n_procs == 16 for s in SPLASH2_SPECS.values())
