"""Unit tests for the distributed parity engine."""

import pytest

from conftest import build_tiny_machine


@pytest.fixture
def machine():
    return build_tiny_machine()          # 3+1 parity on 4 nodes


@pytest.fixture
def mirror_machine():
    return build_tiny_machine(parity_group_size=1)


def data_line(machine, node=1, page_offset=0):
    """A mapped data line homed at ``node``."""
    vaddr = (node + 1) * (1 << 30) + page_offset
    return machine.addr_space.translate_line(vaddr, node)


class TestAddressing:
    def test_parity_line_is_on_another_node(self, machine):
        line = data_line(machine)
        parity_line = machine.revive.parity.parity_line_of(line)
        assert machine.addr_space.node_of(parity_line) != \
            machine.addr_space.node_of(line)

    def test_parity_offset_preserved(self, machine):
        line = data_line(machine, page_offset=17 * 64)
        parity_line = machine.revive.parity.parity_line_of(line)
        assert parity_line % machine.config.page_size == \
            line % machine.config.page_size

    def test_peer_lines_cover_stripe(self, machine):
        line = data_line(machine)
        peers = machine.revive.parity.peer_lines_of(line)
        assert len(peers) == machine.geometry.cluster_size - 1
        assert line not in peers


class TestFunctionalUpdates:
    def test_apply_update_xor(self, machine):
        parity = machine.revive.parity
        line = data_line(machine)
        parity_line = parity.parity_line_of(line)
        parity_node = machine.nodes[machine.addr_space.node_of(parity_line)]

        parity.apply_update(line, 0, 0b1010)
        assert parity_node.memory.read_line(parity_line) == 0b1010
        parity.apply_update(line, 0b1010, 0b0110)
        assert parity_node.memory.read_line(parity_line) == 0b0110

    def test_mirroring_stores_value_directly(self, mirror_machine):
        parity = mirror_machine.revive.parity
        line = data_line(mirror_machine)
        mirror_line = parity.parity_line_of(line)
        mirror_node = mirror_machine.nodes[
            mirror_machine.addr_space.node_of(mirror_line)]
        parity.apply_update(line, 12345, 999)
        assert mirror_node.memory.read_line(mirror_line) == 999

    def test_reconstruction(self, machine):
        parity = machine.revive.parity
        space = machine.addr_space
        line = data_line(machine)
        home = machine.nodes[space.node_of(line)]
        home.memory.write_line(line, 4242)
        parity.apply_update(line, 0, 4242)
        # Forget the line; rebuild it from the surviving stripe.
        home.memory.write_line(line, 0)
        assert parity.reconstruct_line(line) == 4242

    def test_reconstruction_with_multiple_writers(self, machine):
        parity = machine.revive.parity
        space = machine.addr_space
        # Write different values into each data member of one stripe.
        lines, values = [], [111, 222, 333]
        base_line = data_line(machine, node=1)
        stripe = parity.peer_lines_of(base_line) + [base_line]
        data_members = [l for l in stripe if not machine.geometry.
                        is_parity_page(space.node_of(l), space.page_of(l))]
        for line, value in zip(data_members, values):
            node = machine.nodes[space.node_of(line)]
            old = node.memory.read_line(line)
            node.memory.write_line(line, value)
            parity.apply_update(line, old, value)
            lines.append(line)
        for line, value in zip(lines, values):
            node = machine.nodes[space.node_of(line)]
            node.memory.write_line(line, 0)
            assert parity.reconstruct_line(line) == value
            node.memory.write_line(line, value)


class TestTiming:
    def test_time_update_returns_later_ack(self, machine):
        parity = machine.revive.parity
        line = data_line(machine)
        ack = parity.time_update(line, at=1000)
        assert ack > 1000
        assert parity.updates == 1

    def test_par_traffic_charged(self, machine):
        parity = machine.revive.parity
        line = data_line(machine)
        parity.time_update(line, at=0)
        assert machine.stats.network_traffic.bytes_by_category["PAR"] > 0
        assert machine.stats.memory_traffic.bytes_by_category["PAR"] > 0

    def test_mirroring_uses_fewer_memory_accesses(self, machine,
                                                  mirror_machine):
        line_p = data_line(machine)
        line_m = data_line(mirror_machine)
        machine.revive.parity.time_update(line_p, at=0)
        mirror_machine.revive.parity.time_update(line_m, at=0)
        par_p = machine.stats.memory_traffic.bytes_by_category["PAR"]
        par_m = mirror_machine.stats.memory_traffic.bytes_by_category["PAR"]
        assert par_m < par_p


class TestInvariants:
    def test_check_all_parity_clean_machine(self, machine):
        assert machine.revive.parity.check_all_parity() == []

    def test_check_detects_corruption(self, machine):
        parity = machine.revive.parity
        space = machine.addr_space
        line = data_line(machine)
        home = machine.nodes[space.node_of(line)]
        home.memory.write_line(line, 5)     # bypass parity maintenance
        broken = parity.check_all_parity()
        assert broken, "corruption went unnoticed"

    def test_memory_overhead_fraction(self, machine, mirror_machine):
        assert machine.revive.parity.memory_overhead_fraction() == \
            pytest.approx(0.25)          # 3+1 on the tiny machine
        assert mirror_machine.revive.parity.memory_overhead_fraction() == \
            pytest.approx(0.5)


class TestConvenienceAndCosts:
    def test_update_for_write_combines_both_halves(self, machine):
        parity = machine.revive.parity
        line = data_line(machine)
        parity_line = parity.parity_line_of(line)
        parity_node = machine.nodes[machine.addr_space.node_of(parity_line)]
        ack = parity.update_for_write(line, 0, 0xfeed, at=100)
        assert ack > 100
        assert parity_node.memory.read_line(parity_line) == 0xfeed

    def test_recovery_line_cost_grows_with_group_size(self):
        from repro.core.recovery import RecoveryManager

        small = build_tiny_machine(parity_group_size=1)
        big = build_tiny_machine(parity_group_size=3)
        cost_small = RecoveryManager(small)._line_rebuild_cost_ns()
        cost_big = RecoveryManager(big)._line_rebuild_cost_ns()
        assert cost_big > cost_small
