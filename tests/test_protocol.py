"""Integration tests for the directory protocol on a small machine.

Baseline machine (no ReVive): checks coherence state machines, data
movement (functional values), and transaction accounting.
"""

import pytest

from conftest import build_tiny_machine

from repro.cache.cache import EXCLUSIVE, MODIFIED, SHARED
from repro.coherence.directory import (
    DIR_EXCLUSIVE,
    DIR_SHARED,
    DIR_UNCACHED,
)


@pytest.fixture
def machine():
    return build_tiny_machine(revive=False)


def line_at(machine, node, value=0):
    """A line homed at ``node``; optionally pre-set its memory value."""
    vaddr = (node + 1) * (1 << 30)
    paddr = machine.addr_space.translate_line(vaddr, node)
    if value:
        machine.nodes[node].memory.write_line(paddr, value)
    return paddr


class TestReads:
    def test_first_read_grants_exclusive(self, machine):
        addr = line_at(machine, 1, value=77)
        done = machine.protocol.read(0, addr, at=0)
        assert done > 0
        entry = machine.nodes[1].directory.entry(addr)
        assert entry.state == DIR_EXCLUSIVE and entry.owner == 0
        assert machine.nodes[0].hierarchy.l2.peek(addr).state == EXCLUSIVE

    def test_second_reader_shares(self, machine):
        addr = line_at(machine, 1)
        machine.protocol.read(0, addr, at=0)
        machine.protocol.read(2, addr, at=100)
        entry = machine.nodes[1].directory.entry(addr)
        assert entry.state == DIR_SHARED
        assert entry.sharers == {0, 2}
        assert machine.nodes[0].hierarchy.l2.peek(addr).state == SHARED

    def test_read_from_dirty_owner_updates_memory(self, machine):
        addr = line_at(machine, 1, value=10)
        machine.protocol.write(0, addr, at=0, upgrade=False)
        machine.nodes[0].hierarchy.write_value(addr, 42)
        machine.protocol.read(2, addr, at=500)
        # Sharing write-back: memory now holds the dirty value.
        assert machine.nodes[1].memory.read_line(addr) == 42
        entry = machine.nodes[1].directory.entry(addr)
        assert entry.state == DIR_SHARED and entry.sharers == {0, 2}

    def test_remote_read_costs_more_than_local(self, machine):
        local = line_at(machine, 0)
        remote = line_at(machine, 3)
        t_local = machine.protocol.read(0, local, at=0)
        t_remote = machine.protocol.read(0, remote, at=0)
        assert t_remote - 0 > t_local - 0


class TestWrites:
    def test_write_miss_takes_ownership(self, machine):
        addr = line_at(machine, 1, value=5)
        machine.protocol.write(0, addr, at=0, upgrade=False)
        entry = machine.nodes[1].directory.entry(addr)
        assert entry.state == DIR_EXCLUSIVE and entry.owner == 0
        line = machine.nodes[0].hierarchy.l2.peek(addr)
        assert line.state == MODIFIED
        assert line.value == 5          # old content transferred

    def test_write_invalidates_sharers(self, machine):
        addr = line_at(machine, 1)
        machine.protocol.read(0, addr, at=0)
        machine.protocol.read(2, addr, at=100)
        machine.protocol.read(3, addr, at=200)
        machine.protocol.write(2, addr, at=300, upgrade=True)
        assert machine.nodes[0].hierarchy.l2.peek(addr) is None
        assert machine.nodes[3].hierarchy.l2.peek(addr) is None
        entry = machine.nodes[1].directory.entry(addr)
        assert entry.state == DIR_EXCLUSIVE and entry.owner == 2
        assert machine.stats.value("txn.invalidation") == 2

    def test_dirty_ownership_transfer_preserves_value(self, machine):
        addr = line_at(machine, 1, value=1)
        machine.protocol.write(0, addr, at=0, upgrade=False)
        machine.nodes[0].hierarchy.write_value(addr, 123)
        machine.protocol.write(3, addr, at=500, upgrade=False)
        # The dirty value moved cache-to-cache; memory keeps its
        # checkpoint content (needed by the log).
        line = machine.nodes[3].hierarchy.l2.peek(addr)
        assert line.value == 123
        assert machine.nodes[1].memory.read_line(addr) == 1
        assert machine.nodes[0].hierarchy.l2.peek(addr) is None

    def test_upgrade_on_own_exclusive_line(self, machine):
        addr = line_at(machine, 1)
        machine.protocol.read(0, addr, at=0)         # E at node 0
        machine.nodes[0].hierarchy.l2.peek(addr).state = SHARED
        machine.protocol.write(0, addr, at=100, upgrade=True)
        assert machine.nodes[0].hierarchy.l2.peek(addr).state == MODIFIED


class TestWritebacks:
    def test_dirty_writeback_updates_memory_and_directory(self, machine):
        addr = line_at(machine, 1)
        machine.protocol.write(0, addr, at=0, upgrade=False)
        machine.nodes[0].hierarchy.write_value(addr, 9)
        machine.nodes[0].hierarchy.invalidate(addr)
        machine.protocol.writeback(0, addr, 9, at=500)
        assert machine.nodes[1].memory.read_line(addr) == 9
        assert machine.nodes[1].directory.entry(addr).state == DIR_UNCACHED

    def test_hint_drops_ownership_without_memory_write(self, machine):
        addr = line_at(machine, 1, value=4)
        machine.protocol.read(0, addr, at=0)          # E-clean at node 0
        machine.nodes[0].hierarchy.invalidate(addr)
        machine.protocol.writeback(0, addr, None, at=500)
        assert machine.nodes[1].memory.read_line(addr) == 4
        assert machine.nodes[1].directory.entry(addr).state == DIR_UNCACHED
        assert machine.stats.value("txn.hint") == 1

    def test_retain_clean_keeps_ownership(self, machine):
        addr = line_at(machine, 1)
        machine.protocol.write(0, addr, at=0, upgrade=False)
        machine.nodes[0].hierarchy.write_value(addr, 8)
        machine.protocol.writeback(0, addr, 8, at=500, category="CkpWB",
                                   retain_clean=True)
        entry = machine.nodes[1].directory.entry(addr)
        assert entry.state == DIR_EXCLUSIVE and entry.owner == 0
        assert machine.nodes[1].memory.read_line(addr) == 8


class TestBusySerialisation:
    def test_busy_line_delays_next_transaction(self, machine):
        addr = line_at(machine, 1)
        machine.protocol.read(0, addr, at=0)
        entry = machine.nodes[1].directory.entry(addr)
        entry.busy_until = 10_000
        done = machine.protocol.read(2, addr, at=100)
        assert done > 10_000


class TestTrafficAccounting:
    def test_read_traffic_is_rd_category(self, machine):
        addr = line_at(machine, 1)
        machine.protocol.read(0, addr, at=0)
        assert machine.stats.network_traffic.bytes_by_category["RD/RDX"] > 0
        assert machine.stats.memory_traffic.bytes_by_category["RD/RDX"] > 0

    def test_writeback_traffic_category(self, machine):
        addr = line_at(machine, 1)
        machine.protocol.write(0, addr, at=0, upgrade=False)
        machine.nodes[0].hierarchy.write_value(addr, 9)
        machine.protocol.writeback(0, addr, 9, at=500, category="ExeWB")
        assert machine.stats.network_traffic.bytes_by_category["ExeWB"] > 0


class TestCleanOwnerPaths:
    def test_read_from_clean_exclusive_owner(self, machine):
        """3-hop read where the owner turns out clean: home supplies
        data from memory; no sharing write-back happens."""
        addr = line_at(machine, 1, value=5)
        machine.protocol.read(0, addr, at=0)          # E-clean at node 0
        wb_before = machine.stats.value("txn.writeback")
        machine.protocol.read(2, addr, at=500)
        assert machine.stats.value("txn.writeback") == wb_before
        entry = machine.nodes[1].directory.entry(addr)
        assert entry.state == DIR_SHARED and entry.sharers == {0, 2}

    def test_getx_from_clean_exclusive_owner(self, machine):
        """Ownership transfer from a clean owner: memory supplies the
        data; the old owner's copy is invalidated."""
        addr = line_at(machine, 1, value=31)
        machine.protocol.read(0, addr, at=0)          # E-clean at node 0
        machine.protocol.write(3, addr, at=500, upgrade=False)
        assert machine.nodes[0].hierarchy.l2.peek(addr) is None
        line = machine.nodes[3].hierarchy.l2.peek(addr)
        assert line.value == 31                       # memory's content
        entry = machine.nodes[1].directory.entry(addr)
        assert entry.state == DIR_EXCLUSIVE and entry.owner == 3
