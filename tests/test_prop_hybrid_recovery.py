"""Randomised recovery under the hybrid geometry and varied faults.

Extends the core rollback property test across the extension axes:
mirrored fraction, L-bit design, and fault location all randomised.
"""

from hypothesis import given, settings, strategies as st

from conftest import ToyWorkload, build_tiny_machine

from repro.core.faults import NodeLossFault, TransientSystemFault
from repro.core.recovery import RecoveryManager


@settings(max_examples=8, deadline=None)
@given(seed=st.integers(0, 1 << 16),
       mirrored=st.sampled_from([0.0, 0.2, 0.5]),
       l_bits=st.sampled_from([None, 64, 0]),
       lost_node=st.sampled_from([None, 0, 3]))
def test_recovery_is_exact_across_extension_axes(seed, mirrored, l_bits,
                                                 lost_node):
    machine = build_tiny_machine(mirrored_fraction=mirrored,
                                 l_bit_capacity=l_bits,
                                 log_bytes_per_node=96 * 1024)
    machine.attach_workload(ToyWorkload(rounds=5, refs_per_round=1000,
                                        seed=seed))
    coord = machine.checkpointing
    horizon = 3 * coord.interval_ns
    while coord.checkpoints_committed < 2 and not machine.all_finished:
        machine.run(until=horizon)
        horizon += coord.interval_ns
    if coord.checkpoints_committed < 2:
        return
    detect = coord.commit_times[2] + int(0.8 * coord.interval_ns)
    machine.run(until=detect)

    if lost_node is None:
        TransientSystemFault().apply(machine)
    else:
        NodeLossFault(lost_node).apply(machine)
    result = RecoveryManager(machine).recover(detect_time=detect,
                                              lost_node=lost_node,
                                              target_epoch=1)
    assert machine.verify_against_snapshot(result.target_epoch) == []
    assert machine.revive.parity.check_all_parity() == []
