"""Unit tests for the calendar-based resource model."""

import pytest

from repro.sim.resources import BUCKET_NS, MultiPortResource, Resource


class TestResourceBasics:
    def test_idle_resource_never_waits(self):
        r = Resource("r", 10)
        assert r.acquire(1000) == 1000
        assert r.acquire(5000) == 5000

    def test_zero_service_is_free(self):
        r = Resource("r", 0)
        for _ in range(1000):
            assert r.acquire(123) == 123
        assert r.busy_time == 0

    def test_explicit_service_overrides_default(self):
        r = Resource("r", 10)
        r.acquire(0, service=BUCKET_NS)     # fill bucket 0 exactly
        start = r.acquire(0, service=10)
        assert start >= BUCKET_NS           # pushed to the next bucket

    def test_saturation_produces_waits(self):
        r = Resource("r", 100)
        starts = [r.acquire(0) for _ in range(10)]
        # 10 requests of 100ns at t=0: they must spread over ~1000ns.
        assert max(starts) >= 700
        assert starts == sorted(starts)

    def test_out_of_order_requests_do_not_queue_behind_future(self):
        r = Resource("r", 10)
        r.acquire(10_000)                  # a far-future booking
        # An earlier request must still be served at its own time.
        assert r.acquire(100) == 100

    def test_busy_time_and_requests_accumulate(self):
        r = Resource("r", 7)
        for _ in range(5):
            r.acquire(0)
        assert r.busy_time == 35
        assert r.requests == 5

    def test_utilization(self):
        r = Resource("r", 10)
        for i in range(10):
            r.acquire(i * 100)
        assert r.utilization(1000) == pytest.approx(0.1)
        assert r.utilization(0) == 0.0

    def test_reset(self):
        r = Resource("r", 10)
        r.acquire(0, service=BUCKET_NS)
        r.reset()
        assert r.acquire(0) == 0
        assert r.busy_time == 10

    def test_ports_validation(self):
        with pytest.raises(ValueError):
            Resource("r", 10, ports=0)

    def test_service_spills_across_buckets(self):
        r = Resource("r", 10)
        start = r.acquire(0, service=3 * BUCKET_NS)
        assert start == 0
        # The spill consumed three full buckets; the next request
        # lands in the fourth.
        nxt = r.acquire(0, service=10)
        assert nxt >= 3 * BUCKET_NS


class TestMultiPort:
    def test_ports_multiply_capacity(self):
        single = Resource("s", 50)
        multi = MultiPortResource("m", 50, ports=4)
        singles = [single.acquire(0) for _ in range(8)]
        multis = [multi.acquire(0) for _ in range(8)]
        assert max(multis) < max(singles)

    def test_utilization_accounts_for_ports(self):
        m = MultiPortResource("m", 10, ports=2)
        for i in range(10):
            m.acquire(i * 100)
        assert m.utilization(1000) == pytest.approx(0.05)


class TestPruning:
    def test_old_buckets_are_dropped_but_stay_booked(self):
        r = Resource("r", BUCKET_NS)
        # Fill ancient history and then trigger pruning via activity
        # far in the future.
        r.acquire(0, service=BUCKET_NS)
        for i in range(5000):
            r.acquire(1_000_000 + i * BUCKET_NS, service=1)
        # The pruned past must not be bookable again.
        start = r.acquire(0, service=10)
        assert start > 0

    def test_full_prefix_skip_is_consistent(self):
        r = Resource("r", BUCKET_NS)
        # Saturate the first 20 buckets with requests at t=0.
        for _ in range(20):
            r.acquire(0, service=BUCKET_NS)
        # A request at t=0 lands after them.
        start = r.acquire(0, service=10)
        assert start >= 20 * BUCKET_NS
