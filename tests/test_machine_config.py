"""Unit tests for machine configuration and presets."""

import dataclasses

import pytest

from repro.machine.config import MachineConfig


class TestPresets:
    def test_paper_matches_table3(self):
        cfg = MachineConfig.paper()
        assert cfg.n_nodes == 16
        assert cfg.l1_size == 16 * 1024
        assert cfg.l2_size == 128 * 1024
        assert cfg.line_size == 64
        assert cfg.dir_latency_ns == 21
        assert cfg.net_base_ns == 30 and cfg.net_per_hop_ns == 8

    def test_bench_scales_caches(self):
        cfg = MachineConfig.bench()
        assert cfg.l2_size == 32 * 1024
        assert cfg.l1_size < MachineConfig.paper().l1_size

    def test_tiny_shapes(self):
        for n in (1, 2, 4, 8, 16):
            cfg = MachineConfig.tiny(n)
            assert cfg.n_nodes == n
            assert cfg.torus_width * cfg.torus_height == n

    def test_tiny_rejects_odd_sizes(self):
        with pytest.raises(ValueError):
            MachineConfig.tiny(3)


class TestValidation:
    def test_torus_must_cover_nodes(self):
        with pytest.raises(ValueError):
            MachineConfig(n_nodes=16, torus_width=3, torus_height=4)

    def test_power_of_two_sizes(self):
        with pytest.raises(ValueError):
            MachineConfig(line_size=48)
        with pytest.raises(ValueError):
            MachineConfig(l2_size=100_000)

    def test_inclusive_hierarchy(self):
        with pytest.raises(ValueError):
            MachineConfig(l1_size=256 * 1024, l2_size=128 * 1024)

    def test_node_memory_page_aligned(self):
        with pytest.raises(ValueError):
            MachineConfig(node_memory_bytes=4096 * 3 + 1)


class TestDerived:
    def test_lines_and_pages(self):
        cfg = MachineConfig.paper()
        assert cfg.lines_per_page == cfg.page_size // cfg.line_size
        assert cfg.pages_per_node * cfg.page_size == cfg.node_memory_bytes

    def test_hops_torus_wraps(self):
        cfg = MachineConfig.paper()      # 4x4 torus
        assert cfg.hops(0, 0) == 0
        assert cfg.hops(0, 1) == 1
        assert cfg.hops(0, 3) == 1       # wraparound in x
        assert cfg.hops(0, 12) == 1      # wraparound in y
        assert cfg.hops(0, 10) == 4      # farthest corner: 2 + 2

    def test_hops_symmetric(self):
        cfg = MachineConfig.paper()
        for a in range(16):
            for b in range(16):
                assert cfg.hops(a, b) == cfg.hops(b, a)

    def test_net_latency(self):
        cfg = MachineConfig.paper()
        assert cfg.net_latency(0, 0) == 0
        assert cfg.net_latency(0, 1) == 38
        assert cfg.net_latency(0, 10) == 30 + 8 * 4

    def test_line_message_bytes(self):
        cfg = MachineConfig.paper()
        assert cfg.line_message_bytes() == 8 + 64

    def test_frozen_fields_survive_replace(self):
        cfg = dataclasses.replace(MachineConfig.bench(), ipc=2.0)
        assert cfg.ipc == 2.0
        assert cfg.l2_size == 32 * 1024
