"""Determinism observatory tests (docs/OBSERVABILITY.md).

The digest chain is only useful if two properties hold: *invariance*
(anything the repo promises is bit-identical — execution tiers, sweep
workers, snapshot restores — must produce byte-equal chains) and
*sensitivity* (an actual divergence must change the chain, and the
diff machinery must localize it to the right window, component, and
event).  These tests pin both, plus the canonical encoding the hashes
are built from — silently changing the encoding would invalidate every
stored side-channel file.
"""

from __future__ import annotations

import pytest

from repro.harness.runner import build_machine, tiny_revive_overrides
from repro.machine.config import MachineConfig
from repro.obs.digest import (DIGEST_SCHEMA, GENESIS, DigestChain,
                              DigestRecorder, canonical_bytes,
                              component_digest, digest_value,
                              first_divergence, merge_sweep_digests,
                              packed_ints_digest, window_digest)
from repro.workloads.registry import get_workload

INTERVAL_NS = 50_000
SCALE = 0.05
NODES = 4

#: The perturbed store counter used throughout: early enough that the
#: flip lands inside the first checkpoint interval.
PERTURB = 100


def build(app="lu", variant="cp_parity", perturb=None):
    machine = build_machine(variant, MachineConfig.tiny(NODES),
                            INTERVAL_NS, **tiny_revive_overrides(NODES))
    machine.attach_workload(get_workload(app, scale=SCALE,
                                         n_procs=NODES))
    if perturb is not None:
        # Must land before the first run: the compiled fast paths
        # hoist the perturbation at bind time.
        machine.perturb_store = perturb
    return machine


def run_digested(app="lu", variant="cp_parity", perturb=None,
                 tier=None) -> DigestChain:
    """One digested run; returns its chain."""
    machine = build(app, variant, perturb)
    if tier is not None:
        for proc in machine.processors:
            proc.fastpath = tier != "reference"
            proc.columnar = tier == "columnar"
    machine.install_digests(DigestRecorder(None))
    machine.record_digest(0)
    machine.run()
    return machine.digests.chain


class TestCanonicalEncoding:
    def test_sorted_keys_no_whitespace(self):
        assert canonical_bytes({"b": 1, "a": [2, None]}) \
            == b'{"a":[2,null],"b":1}'

    def test_integer_keys_become_decimal_strings(self):
        assert canonical_bytes({10: "x", 2: "y"}) == b'{"2":"y","10":"x"}'

    def test_sets_are_sorted_into_lists(self):
        assert digest_value({"s": {3, 1, 2}}) == digest_value({"s": [1, 2, 3]})

    def test_unencodable_values_raise(self):
        with pytest.raises(TypeError, match="cannot canonicalize"):
            canonical_bytes({"x": object()})

    def test_packed_ints_shape_independent(self):
        # Same integer sequence, any iterable shape: dict views, the
        # restore-rebuilt list, a generator — one digest.
        buckets = {100: 7, 101: 3, 102: 9}
        assert packed_ints_digest(buckets.values()) \
            == packed_ints_digest(list(buckets.values())) \
            == packed_ints_digest(v for v in (7, 3, 9))

    def test_packed_ints_order_sensitive(self):
        assert packed_ints_digest([1, 2]) != packed_ints_digest([2, 1])

    def test_component_digest_prefers_digest_state_hook(self):
        class Hooked:
            def snapshot(self):  # pragma: no cover - must not be called
                raise AssertionError("hook should win")

            def digest_state(self):
                return {"x": 1}

        class Plain:
            def snapshot(self):
                return {"x": 1}

        assert component_digest(Hooked()) == component_digest(Plain()) \
            == digest_value({"x": 1})


class TestDigestChain:
    def test_empty_chain_tip_is_genesis(self):
        assert DigestChain().tip == GENESIS

    def test_append_links_windows(self):
        chain = DigestChain()
        first = chain.append({"engine": "a" * 64}, epoch=0, ts=0)
        second = chain.append({"engine": "b" * 64}, epoch=1, ts=50)
        assert first["prev"] == GENESIS
        assert second["prev"] == first["machine"]
        assert second["window"] == 1
        assert second["machine"] == window_digest(first["machine"],
                                                  {"engine": "b" * 64})
        assert chain.tip == second["machine"]
        assert len(chain) == 2

    def test_jsonable_round_trip(self):
        chain = DigestChain()
        chain.append({"engine": "a" * 64}, epoch=0, ts=0)
        doc = chain.to_jsonable()
        assert doc["schema"] == DIGEST_SCHEMA
        assert DigestChain.from_jsonable(doc) == chain

    def test_unknown_schema_rejected(self):
        with pytest.raises(ValueError, match="schema"):
            DigestChain.from_jsonable({"schema": 999, "windows": []})

    def two_chains(self):
        a, b = DigestChain(), DigestChain()
        for chain in (a, b):
            chain.append({"engine": "a" * 64, "node0.memory": "b" * 64},
                         epoch=0, ts=0)
        return a, b

    def test_first_divergence_none_for_equal_chains(self):
        a, b = self.two_chains()
        assert first_divergence(a.windows, b.windows) is None

    def test_first_divergence_names_window_and_component(self):
        a, b = self.two_chains()
        a.append({"engine": "c" * 64, "node0.memory": "d" * 64},
                 epoch=1, ts=50)
        b.append({"engine": "c" * 64, "node0.memory": "e" * 64},
                 epoch=1, ts=50)
        div = first_divergence(a.windows, b.windows)
        assert div["window"] == 1 and div["epoch"] == 1
        assert div["component"] == "node0.memory"
        assert div["a"] == "d" * 64 and div["b"] == "e" * 64

    def test_prefix_divergence_has_no_component(self):
        a, b = self.two_chains()
        b.append({"engine": "c" * 64}, epoch=1, ts=50)
        div = first_divergence(a.windows, b.windows)
        assert div["window"] == 1 and div["component"] is None
        assert div["a"] is None and div["b"] is not None

    def test_merge_sweep_digests_shape(self):
        a, _ = self.two_chains()
        doc = merge_sweep_digests(["lu__cp_parity"], [a.to_jsonable()])
        assert doc == {"schema": DIGEST_SCHEMA,
                       "jobs": [{"label": "lu__cp_parity",
                                 "digest": a.to_jsonable()}]}


class TestRunInvariance:
    """Equal runs must produce byte-equal chains — the repo's
    bit-identical determinism invariant, made checkable."""

    def test_identical_runs_identical_chains(self):
        first, second = run_digested(), run_digested()
        assert len(first) >= 2, "run too short to exercise the chain"
        assert first == second

    def test_chain_is_identical_across_all_three_tiers(self):
        reference = run_digested(tier="reference")
        scalar = run_digested(tier="scalar")
        columnar = run_digested(tier="columnar")
        assert len(reference) >= 2
        assert reference == scalar == columnar

    def test_serial_and_parallel_sweeps_merge_identically(self):
        from repro.harness.parallel import run_sweep

        kwargs = dict(scale=SCALE, n_procs=NODES,
                      interval_ns=INTERVAL_NS,
                      machine_config=MachineConfig.tiny(NODES),
                      digest=True, **tiny_revive_overrides(NODES))
        serial = run_sweep(["lu", "fft"], ["cp_parity"], serial=True,
                           **kwargs)
        parallel = run_sweep(["lu", "fft"], ["cp_parity"], workers=2,
                             **kwargs)
        assert serial.digest is not None
        assert serial.digest == parallel.digest
        for job in serial.digest["jobs"]:
            assert len(job["digest"]["windows"]) >= 2, job["label"]

    def test_undigested_run_matches_digested_run(self):
        # Digesting is an observation: it must not perturb the
        # simulation it fingerprints.
        digested = build()
        digested.install_digests(DigestRecorder(None))
        digested.record_digest(0)
        digested.run()
        plain = build()
        plain.run()
        assert plain.simulator.now == digested.simulator.now
        assert plain.total_mem_refs() == digested.total_mem_refs()
        assert [dict(node.memory.lines()) for node in plain.nodes] \
            == [dict(node.memory.lines()) for node in digested.nodes]


class TestDivergenceLocalization:
    """Sensitivity: an injected store flip must break the chain at the
    right window and bisect down to the event that consumed it."""

    def run_digest_doc(self, perturb=None):
        chain = run_digested(perturb=perturb)
        spec = {"app": "lu", "variant": "cp_parity", "scale": SCALE,
                "nodes": NODES, "interval_us": INTERVAL_NS / 1000,
                "perturb_store": perturb}
        return {"schema": 1, "spec": spec,
                "chain": chain.to_jsonable()}

    def test_perturbed_run_diverges_at_first_boundary_after_flip(self):
        from repro.obs.diff import diff_run_digests

        clean = self.run_digest_doc()
        flipped = self.run_digest_doc(perturb=PERTURB)
        div = diff_run_digests(clean, flipped)
        assert div is not None
        # Store 100 lands inside the first checkpoint interval, so
        # window 0 (initial state) agrees and window 1 diverges, in a
        # memory/cache component — never the engine or timing.
        assert div["window"] == 1
        assert ("memory" in div["component"]
                or "caches" in div["component"])
        assert div["a"] != div["b"]
        assert diff_run_digests(clean, self.run_digest_doc()) is None

    def test_bisection_pins_the_event_consuming_the_flipped_store(
            self, tmp_path):
        import pickle

        from repro.machine.snapshot import restore_machine
        from repro.obs.diff import bisect_divergence, diff_run_digests

        clean = self.run_digest_doc()
        flipped = self.run_digest_doc(perturb=PERTURB)
        div = diff_run_digests(clean, flipped)
        image_path = str(tmp_path / "frontier.bin")
        report = bisect_divergence(clean, flipped, div,
                                   image_path=image_path)
        event = report["event"]
        assert event is not None
        # The event's store range (before, after] must cover the
        # injected counter — the bisection found the exact activation
        # that consumed the flipped store.
        lo, hi = event["store_range"]
        assert lo < PERTURB <= hi
        assert event["a"] != event["b"]
        assert event["component"]
        # The captured frontier image is run A's state after the last
        # agreeing event — restorable for offline inspection.
        assert report["image"] == image_path
        machine = build()
        restore_machine(machine, pickle.loads(
            open(image_path, "rb").read()))
        assert machine._store_counter <= PERTURB


class TestDigestedTraceContract:
    def test_digested_run_trace_lints_clean(self, tmp_path):
        from repro.obs import JsonlFileSink, Tracer, lint_file

        path = str(tmp_path / "digested.jsonl")
        tracer = Tracer(JsonlFileSink(path))
        machine = build()
        machine.install_tracer(tracer)
        machine.install_digests(DigestRecorder(tracer))
        machine.record_digest(0)
        machine.run()
        tracer.close()
        assert machine.digests.chain.windows, "no windows recorded"
        assert lint_file(path) == []

    def test_one_window_per_checkpoint_boundary(self):
        chain = run_digested()
        machine = build()
        machine.run()
        committed = machine.checkpointing.checkpoints_committed
        # Window 0 is the initial state; every committed checkpoint
        # contributes exactly one more.
        assert len(chain) == committed + 1
        epochs = [w["epoch"] for w in chain.windows]
        assert epochs == list(range(committed + 1))
