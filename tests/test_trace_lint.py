"""Tests for repro.obs.lint: the trace schema validator.

``repro trace-lint`` is the schema's executable contract: traces the
package writes must lint clean, and each way a foreign (or corrupted)
trace can violate the schema must produce a problem string.
"""

from __future__ import annotations

import json
import os

from repro.obs import (JsonlFileSink, SCHEMA_VERSION, Tracer, lint_events,
                       lint_file)
from repro.obs.lint import ENVELOPE_KEYS, EVENT_FIELDS
from tests.conftest import ToyWorkload, build_tiny_machine


def ev(seq, name, ts=0, **fields):
    return dict({"v": SCHEMA_VERSION, "seq": seq, "ts": ts,
                 "cat": name.split(".")[0], "name": name}, **fields)


def valid_stream():
    return [
        ev(0, "sim.run_begin", until=None, pending=3),
        ev(1, "ckpt.begin", ts=10, epoch=1),
        ev(2, "ckpt.commit", ts=40, epoch=1, dur_ns=30),
        ev(3, "sim.warmup_done", ts=50),
        ev(4, "mem.batch", ts=60, node=0, refs=10, l1_hits=8, l1_misses=2,
           l2_hits=1, l2_misses=1, remote=0),
    ]


class TestLintEvents:
    def test_clean_stream_has_no_problems(self):
        assert lint_events(valid_stream()) == []

    def test_extra_fields_never_fail(self):
        # Fields may be added within a schema version.
        event = ev(0, "ckpt.begin", epoch=1, experimental_hint="x")
        assert lint_events([event]) == []

    def test_non_object_event(self):
        (problem,) = lint_events(["not a dict"])
        assert "not a JSON object" in problem

    def test_missing_envelope_keys(self):
        event = ev(0, "ckpt.begin", epoch=1)
        del event["ts"], event["cat"]
        (problem,) = lint_events([event], source="t.jsonl")
        assert problem.startswith("t.jsonl:0:")
        assert "missing envelope keys" in problem

    def test_wrong_schema_version(self):
        event = ev(0, "ckpt.begin", epoch=1)
        event["v"] = SCHEMA_VERSION + 1
        (problem,) = lint_events([event])
        assert "schema version" in problem

    def test_seq_must_strictly_increase(self):
        events = [ev(0, "sim.warmup_done"), ev(0, "sim.warmup_done", ts=1)]
        (problem,) = lint_events(events)
        assert "does not increase" in problem

    def test_non_integer_seq_and_ts(self):
        event = ev(0, "sim.warmup_done")
        event["seq"] = "zero"
        event["ts"] = -5
        problems = lint_events([event])
        assert any("seq" in p for p in problems)
        assert any("ts" in p for p in problems)

    def test_unknown_category(self):
        event = ev(0, "ckpt.begin", epoch=1)
        event["cat"] = "quantum"
        (problem,) = lint_events([event])
        assert "unknown category 'quantum'" in problem

    def test_name_not_namespaced_under_category(self):
        event = ev(0, "ckpt.begin", epoch=1)
        event["name"] = "log.append"        # cat stays "ckpt"
        (problem,) = lint_events([event])
        assert "not namespaced" in problem

    def test_unknown_event_name_flagged(self):
        (problem,) = lint_events([ev(0, "ckpt.wormhole")])
        assert "unknown event name" in problem

    def test_missing_required_fields(self):
        event = ev(0, "log.append", node=0, slot=1)
        (problem,) = lint_events([event])
        assert "log.append missing required fields" in problem
        assert "bytes_used" in problem

    def test_snap_events_lint_clean(self):
        # The campaign layer's snapshot events (docs/SNAPSHOTS.md):
        # svc-style, outside simulated time, ts 0 by convention.
        stream = [
            ev(0, "snap.capture", key="a" * 64, bytes=253847, epoch=2,
               dur_ms=120),
            ev(1, "snap.fork", key="a" * 64, scenarios=9),
            ev(2, "snap.restore", key="a" * 64, bytes=253847, dur_ms=3),
        ]
        assert lint_events(stream) == []

    def test_snap_capture_missing_fields(self):
        (problem,) = lint_events([ev(0, "snap.capture", key="k")])
        assert "snap.capture missing required fields" in problem
        assert "epoch" in problem and "dur_ms" in problem

    def test_unknown_snap_name_flagged(self):
        (problem,) = lint_events([ev(0, "snap.teleport", key="k")])
        assert "unknown event name" in problem

    def test_live_campaign_trace_lints_clean(self, tmp_path):
        from repro.harness.campaign import run_campaign
        from repro.harness.runner import tiny_revive_overrides
        from repro.machine.config import MachineConfig

        path = str(tmp_path / "campaign.jsonl")
        tracer = Tracer(JsonlFileSink(path))
        run_campaign("fft", "cp_parity", scale=0.05, n_procs=4,
                     interval_ns=50_000,
                     machine_config=MachineConfig.tiny(4),
                     warm_checkpoints=2, lost_nodes=(1,),
                     detect_fractions=(0.5,), serial=True,
                     cache_dir=str(tmp_path / "store"), tracer=tracer,
                     **tiny_revive_overrides(4))
        tracer.close()
        assert lint_file(path) == []

    def test_catalog_is_namespaced_and_enveloped(self):
        # Internal consistency of the schema catalog itself.
        assert ENVELOPE_KEYS == ("v", "seq", "ts", "cat", "name")
        from repro.obs import CATEGORIES

        for name, fields in EVENT_FIELDS.items():
            assert name.split(".")[0] in set(CATEGORIES)
            assert not set(fields) & set(ENVELOPE_KEYS)


def span_pair(seq=0, ts=100, txn=0, cls="read_miss", node=1, dur=80,
              segs=None):
    """A well-formed span.begin/span.end pair for mutation tests."""
    if segs is None:
        segs = [["net", 30], ["dir", 21], ["mem_read", 29]]
    begin = ev(seq, "span.begin", ts=ts, txn=txn, node=node,
               **{"class": cls})
    end = ev(seq + 1, "span.end", ts=ts + dur, txn=txn, node=node,
             dur_ns=dur, segs=segs, **{"class": cls})
    return [begin, end]


class TestLintSpans:
    def test_well_formed_span_lints_clean(self):
        assert lint_events(span_pair()) == []

    def test_segment_sum_closure_violation(self):
        events = span_pair(segs=[["net", 30], ["dir", 21]])  # sums to 51
        (problem,) = lint_events(events)
        assert "segments sum to 51 but span dur_ns is 80" in problem

    def test_end_without_begin(self):
        (_begin, end) = span_pair()
        (problem,) = lint_events([end])
        assert "span.end for txn 0 without a span.begin" in problem

    def test_begin_without_end_flagged_at_eof(self):
        (begin, _end) = span_pair()
        (problem,) = lint_events([begin], source="t.jsonl")
        assert problem == ("t.jsonl: span.begin for txn 0 has no "
                           "matching span.end")

    def test_duplicate_open_txn(self):
        begin, end = span_pair()
        dup = dict(begin, seq=begin["seq"])
        events = [begin, dict(dup, seq=5), dict(end, seq=6)]
        problems = lint_events(events)
        assert any("already-open txn 0" in p for p in problems)

    def test_class_mismatch_between_begin_and_end(self):
        begin, end = span_pair()
        end = dict(end, **{"class": "writeback"})
        problems = lint_events([begin, end])
        assert any("does not match span.begin class" in p
                   for p in problems)

    def test_unknown_span_class(self):
        events = span_pair(cls="teleport")
        problems = lint_events(events)
        assert any("unknown span class 'teleport'" in p for p in problems)

    def test_unknown_segment_kind(self):
        events = span_pair(segs=[["net", 30], ["warp", 50]])
        problems = lint_events(events)
        assert any("unknown segment kind 'warp'" in p for p in problems)

    def test_dur_must_match_timestamp_difference(self):
        begin, end = span_pair()
        end = dict(end, ts=end["ts"] + 7)
        problems = lint_events([begin, end])
        assert any("!= end ts - begin ts" in p for p in problems)

    def test_malformed_segment_shape(self):
        events = span_pair(segs=[["net", 30, "extra"]])
        problems = lint_events(events)
        assert any("malformed segment" in p for p in problems)

    def test_non_integer_txn(self):
        begin, _end = span_pair()
        begin = dict(begin, txn="seventeen")
        problems = lint_events([begin])
        assert any("is not an integer" in p for p in problems)

    def test_broken_span_fixture_fails_lint(self):
        # The checked-in fixture carries one good span and one whose
        # segments were hand-corrupted to sum short — lint must fail
        # on exactly that span, proving the closure check has teeth.
        fixture = os.path.join(os.path.dirname(__file__), "fixtures",
                               "broken_span_trace.jsonl")
        problems = lint_file(fixture)
        assert len(problems) == 1
        assert "segments sum to 60 but span dur_ns is 101" in problems[0]
        assert "txn 1" in problems[0]


class TestLintTelemetry:
    """prof/stats stateful checks (docs/OBSERVABILITY.md)."""

    def prof_pair(self, wall=1.0, actor_secs=(0.4, 0.5)):
        events = [ev(0, "prof.run", wall_seconds=wall, activations=100)]
        for actor, secs in enumerate(actor_secs):
            events.append(ev(actor + 1, "prof.actor", actor=actor,
                             node=actor, kind="Processor", seconds=secs,
                             activations=50))
        return events

    def test_well_formed_prof_block_lints_clean(self):
        assert lint_events(self.prof_pair()) == []

    def test_actor_seconds_must_not_exceed_run_wall(self):
        (problem,) = lint_events(self.prof_pair(wall=0.8))
        assert "attribution exceeds the run" in problem
        assert "0.900000" in problem and "0.800000" in problem

    def test_actor_without_run_flagged(self):
        (_run, actor, _rest) = self.prof_pair()
        (problem,) = lint_events([dict(actor, seq=0)])
        assert "prof.actor without a preceding prof.run" in problem

    def test_negative_actor_seconds_flagged(self):
        events = self.prof_pair(actor_secs=(-0.1,))
        (problem,) = lint_events(events)
        assert "not a non-negative number" in problem

    def test_block_closes_at_next_run(self):
        # Overattribution is charged to the block it happened in, even
        # when another prof.run follows.
        events = self.prof_pair(wall=0.5)
        events.append(ev(len(events), "prof.run", wall_seconds=9.0,
                         activations=1))
        (problem,) = lint_events(events)
        assert "wall_seconds 0.500000" in problem

    def heartbeat(self, seq, beat):
        return ev(seq, "stats.heartbeat", beat=beat, inflight=0,
                  queue_depth=0, workers_busy=0, workers=2)

    def test_monotonic_heartbeats_lint_clean(self):
        events = [self.heartbeat(index, beat)
                  for index, beat in enumerate((1, 2, 5))]
        assert lint_events(events) == []

    def test_repeated_heartbeat_beat_flagged(self):
        events = [self.heartbeat(0, 3), self.heartbeat(1, 3)]
        (problem,) = lint_events(events)
        assert "heartbeat beat 3 does not increase" in problem

    def test_non_integer_beat_flagged(self):
        (problem,) = lint_events([self.heartbeat(0, "three")])
        assert "is not an integer" in problem

    def test_stats_snapshot_requires_metrics(self):
        (problem,) = lint_events([ev(0, "stats.snapshot", beat=1)])
        assert "stats.snapshot missing required fields" in problem


class TestLintDigest:
    """digest.window stateful checks (determinism observatory)."""

    def window(self, seq, window, prev, ts=0, epoch=0, components=None,
               machine=None):
        from repro.obs.digest import window_digest

        if components is None:
            components = {"engine": "a" * 64, "node0.memory": "b" * 64}
        if machine is None:
            machine = window_digest(prev, components)
        return ev(seq, "digest.window", ts=ts, window=window, epoch=epoch,
                  machine=machine, prev=prev, components=components)

    def chained(self):
        """Window 0, a checkpoint boundary, and its window 1."""
        from repro.obs.digest import GENESIS

        first = self.window(0, 0, GENESIS)
        stream = [first,
                  ev(1, "ckpt.begin", ts=10, epoch=1),
                  ev(2, "ckpt.commit", ts=40, epoch=1, dur_ns=30),
                  self.window(3, 1, first["machine"], ts=40, epoch=1,
                              components={"engine": "c" * 64})]
        return stream

    def test_well_formed_chain_lints_clean(self):
        assert lint_events(self.chained()) == []

    def test_broken_prev_linkage(self):
        stream = self.chained()
        # Recompute machine from the *claimed* prev so only the
        # linkage check fires, not the recompute check too.
        stream[3] = self.window(3, 1, "0" * 64, ts=40, epoch=1)
        (problem,) = lint_events(stream)
        assert "the chain is broken" in problem

    def test_machine_digest_must_recompute(self):
        from repro.obs.digest import GENESIS

        stream = [self.window(0, 0, GENESIS, machine="f" * 64)]
        (problem,) = lint_events(stream)
        assert "does not recompute" in problem

    def test_window_numbers_must_be_sequential(self):
        stream = self.chained()
        skipped = self.window(4, 3, stream[3]["machine"], ts=40, epoch=1)
        (problem,) = lint_events(stream + [skipped])
        assert "window 3 does not follow window 1" in problem

    def test_non_integer_window(self):
        from repro.obs.digest import GENESIS

        event = self.window(0, 0, GENESIS)
        event["window"] = "zero"
        (problem,) = lint_events([event])
        assert "is not an integer" in problem

    def test_components_must_be_nonempty_mapping(self):
        from repro.obs.digest import GENESIS, window_digest

        event = self.window(0, 0, GENESIS, components={},
                            machine=window_digest(GENESIS, {}))
        (problem,) = lint_events([event])
        assert "non-empty name->hexdigest" in problem

    def test_commit_without_digest_window_flagged(self):
        # Once a stream shows any digest.window, every later
        # ckpt.commit owes the chain a window for its epoch.
        stream = self.chained()
        stream.append(ev(4, "ckpt.begin", ts=50, epoch=2))
        stream.append(ev(5, "ckpt.commit", ts=90, epoch=2, dur_ns=40))
        (problem,) = lint_events(stream)
        assert "epoch 2" in problem
        assert "has no digest.window" in problem

    def test_undigested_runs_carry_no_obligation(self):
        # No digest.window anywhere: commits lint clean (back-compat
        # with traces from before the observatory existed).
        assert lint_events(valid_stream()) == []

    def test_broken_digest_fixture_fails_lint(self):
        # The checked-in fixture carries a valid window 0 and a window
        # 1 whose prev was hand-corrupted (machine recomputed from the
        # corrupt prev, so only the linkage check fires) — lint must
        # fail on exactly the chain-linkage problem.
        fixture = os.path.join(os.path.dirname(__file__), "fixtures",
                               "broken_digest_trace.jsonl")
        problems = lint_file(fixture)
        assert len(problems) == 1
        assert "digest window 1 prev" in problems[0]
        assert "the chain is broken" in problems[0]

    def test_live_digested_run_lints_clean(self, tmp_path):
        from repro.obs.digest import DigestRecorder

        path = str(tmp_path / "digested.jsonl")
        machine = build_tiny_machine()
        tracer = Tracer(JsonlFileSink(path))
        machine.install_tracer(tracer)
        machine.install_digests(DigestRecorder(tracer))
        machine.attach_workload(ToyWorkload(rounds=2))
        machine.record_digest(0)
        machine.run()
        tracer.close()
        assert lint_file(path) == []


class TestLintFile:
    def test_missing_file(self, tmp_path):
        (problem,) = lint_file(str(tmp_path / "nope.jsonl"))
        assert "no such trace" in problem

    def test_empty_trace(self, tmp_path):
        path = tmp_path / "empty.jsonl"
        path.write_text("")
        (problem,) = lint_file(str(path))
        assert "trace is empty" in problem

    def test_invalid_jsonl(self, tmp_path):
        path = tmp_path / "broken.jsonl"
        path.write_text('{"v": 1,\n')
        (problem,) = lint_file(str(path))
        assert "not valid JSONL" in problem

    def test_written_stream_round_trips_clean(self, tmp_path):
        path = str(tmp_path / "t.jsonl")
        with open(path, "w", encoding="utf-8") as handle:
            for event in valid_stream():
                handle.write(json.dumps(event) + "\n")
        assert lint_file(path) == []

    def test_live_toy_run_trace_lints_clean(self, tmp_path):
        path = str(tmp_path / "run.jsonl")
        machine = build_tiny_machine()
        tracer = Tracer(JsonlFileSink(path))
        machine.install_tracer(tracer)
        machine.attach_workload(ToyWorkload(rounds=2))
        machine.run()
        tracer.close()
        assert lint_file(path) == []

    def test_rotated_trace_lints_clean_across_segments(self, tmp_path):
        path = str(tmp_path / "rot.jsonl")
        sink = JsonlFileSink(path, max_events_per_file=50)
        machine = build_tiny_machine()
        tracer = Tracer(sink)
        machine.install_tracer(tracer)
        machine.attach_workload(ToyWorkload(rounds=1, refs_per_round=500))
        machine.run()
        tracer.close()
        assert len(sink.paths()) > 1
        assert lint_file(path) == []
