"""Unit tests for the access-pattern building blocks."""

import numpy as np
import pytest

from repro.workloads import patterns


RNG = np.random.default_rng(7)


class TestStridedSweep:
    def test_walks_linearly_and_wraps(self):
        addrs = patterns.strided_sweep(base=1000 * 64, n_lines=4, count=6)
        lines = (addrs - 1000 * 64) // 64
        assert lines.tolist() == [0, 1, 2, 3, 0, 1]

    def test_start_line_offsets(self):
        addrs = patterns.strided_sweep(0, 8, 3, start_line=6)
        assert (addrs // 64).tolist() == [6, 7, 0]

    def test_stride(self):
        addrs = patterns.strided_sweep(0, 8, 4, stride_lines=2)
        assert (addrs // 64).tolist() == [0, 2, 4, 6]

    def test_validation(self):
        with pytest.raises(ValueError):
            patterns.strided_sweep(0, 0, 5)


class TestRandomAndZipf:
    def test_random_lines_in_range(self):
        addrs = patterns.random_lines(RNG, base=4096, n_lines=16,
                                      count=1000)
        assert addrs.min() >= 4096
        assert addrs.max() < 4096 + 16 * 64
        assert (addrs % 64 == 0).all()

    def test_zipf_concentrates_on_low_lines(self):
        addrs = patterns.zipf_lines(RNG, base=0, n_lines=1024, count=20_000)
        lines = addrs // 64
        low_share = (lines < 64).mean()
        assert low_share > 0.5         # heavy head

    def test_zipf_covers_tail(self):
        addrs = patterns.zipf_lines(RNG, base=0, n_lines=1024, count=20_000)
        assert (addrs // 64).max() > 512

    def test_validation(self):
        with pytest.raises(ValueError):
            patterns.random_lines(RNG, 0, 0, 5)
        with pytest.raises(ValueError):
            patterns.zipf_lines(RNG, 0, -1, 5)

    def test_hot_lines(self):
        addrs = patterns.hot_lines(RNG, base=0, n_hot=4, count=100)
        assert set(addrs // 64) <= {0, 1, 2, 3}


class TestInterleave:
    def test_preserves_order_within_parts(self):
        a = np.arange(10, dtype=np.int64) * 64
        b = (np.arange(5, dtype=np.int64) + 100) * 64
        out = patterns.interleave(np.random.default_rng(0), [a, b], [1, 1])
        assert len(out) == 15
        a_positions = [v for v in out if v < 100 * 64]
        assert a_positions == sorted(a_positions)

    def test_empty_parts(self):
        out = patterns.interleave(RNG, [], [])
        assert len(out) == 0

    def test_mismatched_weights(self):
        with pytest.raises(ValueError):
            patterns.interleave(RNG, [np.arange(3)], [1, 2])


class TestMasksAndGaps:
    def test_write_mask_fraction(self):
        mask = patterns.write_mask(np.random.default_rng(0), 100_000, 0.3)
        assert abs(mask.mean() - 0.3) < 0.01

    def test_write_mask_validation(self):
        with pytest.raises(ValueError):
            patterns.write_mask(RNG, 10, 1.5)

    def test_constant_gaps(self):
        gaps = patterns.constant_gaps(5, 3)
        assert gaps.tolist() == [3, 3, 3, 3, 3]

    def test_bursty_gaps(self):
        gaps = patterns.bursty_gaps(np.random.default_rng(0), 10_000, 2,
                                    burst_every=10, burst_ns=100)
        assert gaps.min() == 2
        assert gaps.max() == 102
        assert (gaps == 102).mean() == pytest.approx(0.1, abs=0.02)
