"""Unit tests for the functional per-node memory."""

import pytest

from repro.memory.main_memory import LostMemoryError, NodeMemory


class TestNodeMemory:
    def test_unwritten_lines_read_zero(self):
        mem = NodeMemory(0)
        assert mem.read_line(0x1000) == 0

    def test_write_read_roundtrip(self):
        mem = NodeMemory(0)
        mem.write_line(0x40, 0xdeadbeef)
        assert mem.read_line(0x40) == 0xdeadbeef

    def test_zero_writes_keep_store_sparse(self):
        mem = NodeMemory(0)
        mem.write_line(0x40, 5)
        mem.write_line(0x40, 0)
        assert len(mem) == 0
        assert mem.read_line(0x40) == 0

    def test_huge_line_values(self):
        mem = NodeMemory(0)
        value = (1 << 512) - 1          # a full 64-byte line of ones
        mem.write_line(0x80, value)
        assert mem.read_line(0x80) == value

    def test_destroy_blocks_access(self):
        mem = NodeMemory(3)
        mem.write_line(0x40, 1)
        mem.destroy()
        assert mem.lost
        assert len(mem) == 0
        with pytest.raises(LostMemoryError):
            mem.read_line(0x40)
        with pytest.raises(LostMemoryError):
            mem.write_line(0x40, 2)

    def test_restore_works_while_lost(self):
        mem = NodeMemory(0)
        mem.destroy()
        mem.restore_line(0x40, 7)
        mem.mark_recovered()
        assert mem.read_line(0x40) == 7
        assert not mem.lost

    def test_snapshot_is_a_copy(self):
        mem = NodeMemory(0)
        mem.write_line(0x40, 1)
        snap = mem.snapshot()
        mem.write_line(0x40, 2)
        assert snap == {"lines": [(0x40, 1)], "lost": False}

    def test_snapshot_restore_roundtrip(self):
        mem = NodeMemory(0)
        mem.write_line(0x40, 1)
        mem.write_line(0x80, 5)
        snap = mem.snapshot()
        mem.write_line(0x40, 9)
        mem.destroy()
        mem.restore(snap)
        assert not mem.lost
        assert mem.read_line(0x40) == 1
        assert mem.read_line(0x80) == 5

    def test_lines_iterates_nonzero(self):
        mem = NodeMemory(0)
        mem.write_line(0x40, 1)
        mem.write_line(0x80, 2)
        assert dict(mem.lines()) == {0x40: 1, 0x80: 2}
