"""The content-addressed result store (repro.harness.store).

Pins the storage contract documented in docs/SERVING.md: atomic
publish, self-verifying entries (corruption degrades to recompute,
never a wrong answer), LRU eviction under a byte cap, concurrent
writers racing the same key resolving to one entry, and — the
acceptance oracle — :func:`manifest_bytes` reproducing the exact bytes
``RunLedger.write`` puts on disk.
"""

import hashlib
import json
import os
import threading

import pytest

from repro.harness.store import (
    KIND_RUN,
    STORE_VERSION,
    ResultStore,
    content_key,
    job_digest,
    manifest_bytes,
    store_key,
)
from repro.obs.monitor import RunLedger


def make_store(tmp_path, **kwargs) -> ResultStore:
    return ResultStore(str(tmp_path / "cache"), **kwargs)


def a_key(tag: str) -> str:
    return hashlib.sha256(tag.encode()).hexdigest()


class TestRoundTrip:
    def test_put_get_round_trip(self, tmp_path):
        store = make_store(tmp_path)
        key = a_key("one")
        payload = {"result": {"x": 1}, "manifest": {"app": "lu"}}
        store.put(key, KIND_RUN, payload,
                  artifacts={"trace.jsonl": b'{"seq":0}\n'})
        entry = store.get(key)
        assert entry is not None
        assert entry.kind == KIND_RUN
        assert entry.payload == payload
        assert entry.has_artifact("trace.jsonl")
        assert entry.read_artifact("trace.jsonl") == b'{"seq":0}\n'
        assert store.stats() == {"hits": 1, "misses": 0, "stores": 1,
                                 "evictions": 0, "corruptions": 0,
                                 "races_lost": 0}

    def test_absent_key_is_a_miss(self, tmp_path):
        store = make_store(tmp_path)
        assert store.get(a_key("absent")) is None
        assert store.misses == 1
        assert store.lookups == 1

    def test_put_replaces_existing_entry(self, tmp_path):
        store = make_store(tmp_path)
        key = a_key("upgrade")
        store.put(key, KIND_RUN, {"result": {"x": 1}, "manifest": None})
        store.put(key, KIND_RUN, {"result": {"x": 1}, "manifest": {"m": 2}},
                  artifacts={"trace.jsonl": b"t\n"})
        entry = store.get(key)
        assert entry.payload["manifest"] == {"m": 2}
        assert entry.has_artifact("trace.jsonl")
        assert list(store.keys()) == [key]

    def test_reserved_artifact_names_rejected(self, tmp_path):
        store = make_store(tmp_path)
        for bad in ("entry.json", "meta.json", os.path.join("a", "b")):
            with pytest.raises(ValueError):
                store.put(a_key("bad"), KIND_RUN, {}, artifacts={bad: b""})


class TestCorruption:
    def _entry_dir(self, store, key):
        return os.path.join(store.root, "objects", key[:2], key)

    def test_flipped_artifact_byte_degrades_to_miss(self, tmp_path):
        store = make_store(tmp_path)
        key = a_key("corrupt")
        store.put(key, KIND_RUN, {"result": {}, "manifest": {}},
                  artifacts={"trace.jsonl": b"payload"})
        trace = os.path.join(self._entry_dir(store, key), "trace.jsonl")
        with open(trace, "wb") as handle:
            handle.write(b"tampered")
        assert store.get(key) is None
        assert store.corruptions == 1
        # The entry is gone: the caller recomputes and re-stores.
        assert not os.path.isdir(self._entry_dir(store, key))
        store.put(key, KIND_RUN, {"result": {}, "manifest": {}},
                  artifacts={"trace.jsonl": b"payload"})
        assert store.get(key) is not None

    def test_truncated_entry_json_degrades_to_miss(self, tmp_path):
        store = make_store(tmp_path)
        key = a_key("truncated")
        store.put(key, KIND_RUN, {"result": {}, "manifest": {}})
        entry_file = os.path.join(self._entry_dir(store, key), "entry.json")
        with open(entry_file, "w") as handle:
            handle.write('{"store_version"')
        assert store.get(key) is None
        assert store.corruptions == 1

    def test_missing_meta_degrades_to_miss(self, tmp_path):
        store = make_store(tmp_path)
        key = a_key("no-meta")
        store.put(key, KIND_RUN, {"result": {}, "manifest": {}})
        os.remove(os.path.join(self._entry_dir(store, key), "meta.json"))
        assert store.get(key) is None
        assert store.corruptions == 1


class TestEviction:
    def test_lru_eviction_under_byte_cap(self, tmp_path):
        clock = iter(range(1, 100))
        store = make_store(tmp_path, max_bytes=4096,
                           clock=lambda: float(next(clock)))
        blob = b"x" * 1500
        keys = [a_key(f"evict-{i}") for i in range(3)]
        for key in keys[:2]:
            store.put(key, KIND_RUN, {}, artifacts={"blob": blob})
        assert store.evictions == 0
        # Third entry pushes past 4096 bytes: the oldest goes.
        store.put(keys[2], KIND_RUN, {}, artifacts={"blob": blob})
        assert store.evictions == 1
        assert store.get(keys[0]) is None
        assert store.get(keys[1]) is not None
        assert store.get(keys[2]) is not None
        assert store.total_bytes() <= 4096

    def test_get_refreshes_recency(self, tmp_path):
        clock = iter(range(1, 100))
        store = make_store(tmp_path, max_bytes=4096,
                           clock=lambda: float(next(clock)))
        blob = b"x" * 1500
        keys = [a_key(f"touch-{i}") for i in range(3)]
        for key in keys[:2]:
            store.put(key, KIND_RUN, {}, artifacts={"blob": blob})
        assert store.get(keys[0]) is not None   # touch: now newest of the two
        store.put(keys[2], KIND_RUN, {}, artifacts={"blob": blob})
        assert store.get(keys[1]) is None       # LRU victim was keys[1]
        assert store.get(keys[0]) is not None

    def test_just_written_entry_never_evicted(self, tmp_path):
        store = make_store(tmp_path, max_bytes=64)
        key = a_key("huge")
        store.put(key, KIND_RUN, {}, artifacts={"blob": b"y" * 4096})
        assert store.get(key) is not None

    def test_bad_max_bytes_rejected(self, tmp_path):
        with pytest.raises(ValueError):
            make_store(tmp_path, max_bytes=0)


class TestConcurrency:
    def test_writers_racing_the_same_key(self, tmp_path):
        store = make_store(tmp_path)
        key = a_key("race")
        payload = {"result": {"x": 1}, "manifest": {"m": 1}}
        barrier = threading.Barrier(8)
        errors = []

        def writer():
            try:
                barrier.wait()
                for _ in range(5):
                    store.put(key, KIND_RUN, payload,
                              artifacts={"trace.jsonl": b"identical\n"})
            except Exception as exc:  # noqa: BLE001 — collect, assert below
                errors.append(exc)

        threads = [threading.Thread(target=writer) for _ in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert not errors
        entry = store.get(key)
        assert entry is not None
        assert entry.payload == payload
        assert entry.read_artifact("trace.jsonl") == b"identical\n"
        assert list(store.keys()) == [key]
        # No staging debris left behind.
        tmp_dir = os.path.join(store.root, "tmp")
        assert not os.path.isdir(tmp_dir) or not os.listdir(tmp_dir)


class TestKeys:
    def test_store_key_separates_trace_category_filters(self):
        digest = "d" * 64
        full = store_key(digest)
        filtered = store_key(digest, trace_categories=["coh", "mem"])
        reordered = store_key(digest, trace_categories=["mem", "coh"])
        assert full != filtered
        assert filtered == reordered   # order-insensitive, set semantics

    def test_store_key_folds_store_version(self, monkeypatch):
        digest = "d" * 64
        before = store_key(digest)
        monkeypatch.setattr("repro.harness.store.STORE_VERSION",
                            STORE_VERSION + 1)
        assert store_key(digest) != before

    def test_content_key_is_input_addressed(self):
        assert content_key(b"abc") == content_key(b"abc")
        assert content_key(b"abc") != content_key(b"abd")

    def test_job_digest_matches_ledger(self):
        kwargs = {"scale": 0.1, "n_procs": 4}
        from repro.workloads.splash2 import SPLASH2_SPECS
        seed = SPLASH2_SPECS["lu"].seed
        ledger = RunLedger("lu", "cp_parity", run_args=kwargs, seed=seed)
        assert job_digest("lu", "cp_parity", kwargs) == \
            ledger.config_digest()


class TestManifestBytes:
    def test_matches_run_ledger_write(self, tmp_path):
        ledger = RunLedger("lu", "cp_parity",
                           run_args={"scale": 0.1, "n_procs": 4}, seed=7)
        manifest = ledger.finalize()
        path = str(tmp_path / "ledger.json")
        ledger.write(path)
        with open(path, "rb") as handle:
            fresh = handle.read()
        # Through a JSON round trip, as a cached manifest would travel.
        cached = json.loads(json.dumps(manifest))
        assert manifest_bytes(cached) == fresh
