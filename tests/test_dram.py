"""Unit tests for the DRAM timing model."""

import pytest

from repro.machine.config import MachineConfig
from repro.memory.dram import MemoryTimingModel


class TestMemoryTimingModel:
    def make(self):
        return MemoryTimingModel(MachineConfig.tiny(4), node=0)

    def test_row_miss_latency(self):
        m = self.make()
        done = m.access(at=100)
        assert done == 100 + m.config.mem_row_miss_ns

    def test_row_hit_is_cheaper(self):
        m = self.make()
        miss = m.access(at=0) - 0
        m.reset()
        hit = m.access(at=0, row_hit=True) - 0
        assert hit < miss

    def test_bus_occupancy_throttles_bursts(self):
        m = self.make()
        # Fire 100 accesses at the same instant: the bus serialises
        # them at ~20ns/line, so the last starts ~2us later.
        completions = [m.access(at=0) for _ in range(100)]
        spread = max(completions) - min(completions)
        assert spread >= 90 * m.bus_ns_per_line * 0.8

    def test_bus_rate_matches_config(self):
        cfg = MachineConfig.tiny(4)
        m = MemoryTimingModel(cfg, 0)
        assert m.bus_ns_per_line == round(cfg.line_size
                                          / cfg.mem_bytes_per_ns)

    def test_access_counting_and_utilization(self):
        m = self.make()
        for i in range(10):
            m.access(at=i * 1000)
        assert m.accesses == 10
        assert 0 < m.utilization(10_000) < 1

    def test_reset(self):
        m = self.make()
        m.access(at=0)
        m.reset()
        assert m.accesses == 0
