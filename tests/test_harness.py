"""Unit tests for the experiment harness (runner + reporting)."""

import pytest

from repro.core.config import ReViveConfig
from repro.harness.reporting import (
    format_table,
    megabytes,
    milliseconds,
    percent,
)
from repro.harness.runner import (
    RunResult,
    VARIANTS,
    VARIANT_LABELS,
    build_machine,
    revive_config_for,
)
from repro.machine.config import MachineConfig


class TestVariants:
    def test_baseline_has_no_revive(self):
        assert revive_config_for("baseline") is None
        machine = build_machine("baseline",
                                machine_config=MachineConfig.tiny(16))
        assert machine.revive is None

    def test_cp_parity(self):
        cfg = revive_config_for("cp_parity", interval_ns=123)
        assert cfg.parity_group_size == 7
        assert cfg.checkpoint_interval_ns == 123

    def test_cpinf_disables_checkpoints(self):
        cfg = revive_config_for("cpinf_parity")
        assert cfg.checkpoint_interval_ns is None

    def test_mirroring_variants(self):
        assert revive_config_for("cp_mirroring").parity_group_size == 1
        assert revive_config_for("cpinf_mirroring").mirroring

    def test_overrides_flow_through(self):
        cfg = revive_config_for("cp_parity", keep_checkpoints=3)
        assert cfg.keep_checkpoints == 3

    def test_unknown_variant(self):
        with pytest.raises(ValueError):
            build_machine("bogus")

    def test_every_variant_has_a_label(self):
        assert set(VARIANT_LABELS) == set(VARIANTS)


class TestReViveConfig:
    def test_defaults_are_paper_design_point(self):
        cfg = ReViveConfig()
        assert cfg.parity_group_size == 7
        assert cfg.keep_checkpoints == 2
        assert not cfg.mirroring

    def test_validation(self):
        with pytest.raises(ValueError):
            ReViveConfig(parity_group_size=0)
        with pytest.raises(ValueError):
            ReViveConfig(keep_checkpoints=0)
        with pytest.raises(ValueError):
            ReViveConfig(checkpoint_interval_ns=-5)
        with pytest.raises(ValueError):
            ReViveConfig(detection_latency_fraction=5.0)
        with pytest.raises(ValueError):
            ReViveConfig(log_bytes_per_node=0)
        with pytest.raises(ValueError):
            ReViveConfig(rebuild_dedication=0.0)

    def test_detection_latency(self):
        cfg = ReViveConfig(checkpoint_interval_ns=1000,
                           detection_latency_fraction=0.8)
        assert cfg.detection_latency_ns == 800
        assert ReViveConfig.cpinf_parity().detection_latency_ns == 0

    def test_factory_methods(self):
        assert ReViveConfig.cp_parity(1000).checkpoint_interval_ns == 1000
        assert ReViveConfig.cp_mirroring(1000).mirroring
        assert ReViveConfig.cpinf_mirroring().checkpoint_interval_ns is None


class TestRunResult:
    def make(self, ns):
        return RunResult(app="x", variant="baseline",
                         execution_time_ns=ns, total_refs=10,
                         l2_miss_rate=0.0, network_traffic={},
                         memory_traffic={}, checkpoints=0,
                         max_log_bytes=0, instructions=0.0)

    def test_overhead(self):
        base, mine = self.make(100), self.make(110)
        assert mine.overhead_vs(base) == pytest.approx(0.10)

    def test_zero_baseline_rejected(self):
        with pytest.raises(ValueError):
            self.make(10).overhead_vs(self.make(0))


class TestReporting:
    def test_format_table_alignment(self):
        out = format_table(["a", "bb"], [[1, "x"], [22, "yy"]], title="T")
        lines = out.splitlines()
        assert lines[0] == "T"
        widths = {len(l) for l in lines[1:]}
        assert len(widths) == 1          # all rows equal width

    def test_row_width_validation(self):
        with pytest.raises(ValueError):
            format_table(["a"], [[1, 2]])

    def test_unit_helpers(self):
        assert percent(0.0632, 1) == "6.3%"
        assert megabytes(2.5 * 1024 * 1024, 1) == "2.5MB"
        assert milliseconds(820e6, 0) == "820ms"
