#!/usr/bin/env python
"""One-command smoke test: CLI health + a tiny traced run + lint.

Run from the repository root::

    python tools/smoke.py

Steps (documented in docs/OBSERVABILITY.md):

1. ``python -m repro --help`` exits 0.
2. ``python -m repro trace lu`` on a tiny 4-node machine writes a
   JSONL trace whose recomputed recovery breakdown matches the live
   ``RecoveryResult`` (the command itself verifies this and exits
   non-zero on mismatch).
3. The trace passes ``python -m repro trace-lint`` — the full schema
   validation (envelope, categories, names, required fields), a strict
   superset of the quick envelope check also performed here.
4. ``ruff check`` — only when the ruff binary is installed (it is an
   optional dev dependency; the smoke test must not require network
   installs), otherwise the step is reported as skipped.
5. Perf smoke: one quick throughput measurement through
   ``repro.harness.perf`` must clear a very soft floor (a fraction of
   the hard perf-harness floor; see docs/PERFORMANCE.md).  Catches
   "the simulator got 10x slower" mistakes without the full
   ``tools/bench.py`` run.
6. Tier matrix: one small ``lu``/cp_parity run through each execution
   tier (reference loop, scalar fast path, columnar batch engine) —
   times, counters, and memory contents must be bit-identical
   (docs/PERFORMANCE.md; the exhaustive oracle is
   ``tests/test_columnar.py``).
7. Profile attribution: ``repro profile lu`` on the tiny machine must
   attribute at least half of ``machine.run``'s wall clock to actors
   (the real gate is 95%; the smoke floor only catches a broken
   attribution path) and its ``prof.*`` trace must pass
   ``repro trace-lint`` (docs/OBSERVABILITY.md).
8. Serve round-trip: start ``repro serve`` on a free port with a
   scratch cache, ``repro submit`` the same tiny run twice, and check
   the first reports a cache miss and the second a cache hit — the
   end-to-end path documented in docs/SERVING.md.
9. Serve telemetry: against a fresh server, ``repro stats`` must
   stream a heartbeat and a metrics snapshot, and ``repro stats
   --prometheus`` must scrape the same registry as Prometheus text
   through ``GET /metrics`` on the service port (docs/SERVING.md).
10. Campaign round-trip: ``repro campaign`` twice against a scratch
    store — the first run must capture the warm image (miss), the
    second must fork from the cached image with identical outcomes,
    and the campaign trace must pass ``repro trace-lint``
    (docs/SNAPSHOTS.md).
11. Determinism diff: ``repro run --digest`` twice — once clean, once
    with ``REPRO_PERTURB_STORE=100`` flipping one reference — then
    ``repro diff --bisect`` must exit 1, name the first divergent
    window and component, and localise a replayed event whose store
    range covers the injected counter (docs/OBSERVABILITY.md,
    "Determinism observatory").

Exits 0 when every executed step passes.
"""

from __future__ import annotations

import json
import os
import shutil
import subprocess
import sys
import tempfile

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
ENVELOPE_KEYS = {"v", "seq", "ts", "cat", "name"}


def _env():
    env = dict(os.environ)
    env["PYTHONPATH"] = os.pathsep.join(
        p for p in (os.path.join(REPO_ROOT, "src"),
                    env.get("PYTHONPATH")) if p)
    return env


def run(argv, **kwargs):
    return subprocess.run(argv, cwd=REPO_ROOT, env=_env(), **kwargs)


def step_cli_help() -> None:
    proc = run([sys.executable, "-m", "repro", "--help"],
               capture_output=True, text=True)
    if proc.returncode != 0:
        raise SystemExit(f"repro --help failed:\n{proc.stderr}")


def step_traced_run() -> None:
    from repro.obs import SCHEMA_VERSION, read_trace

    with tempfile.TemporaryDirectory() as tmp:
        trace_path = os.path.join(tmp, "smoke.jsonl")
        proc = run([sys.executable, "-m", "repro", "trace", "lu",
                    "--out", trace_path, "--profile"],
                   capture_output=True, text=True)
        if proc.returncode != 0:
            raise SystemExit("repro trace failed:\n"
                             f"{proc.stdout}\n{proc.stderr}")
        events = read_trace(trace_path)
        if not events:
            raise SystemExit("trace is empty")
        for event in events:
            missing = ENVELOPE_KEYS - event.keys()
            if missing:
                raise SystemExit(
                    f"event missing envelope keys {missing}: "
                    f"{json.dumps(event)}")
            if event["v"] != SCHEMA_VERSION:
                raise SystemExit(f"unexpected schema version: {event}")
        lint = run([sys.executable, "-m", "repro", "trace-lint",
                    trace_path], capture_output=True, text=True)
        if lint.returncode != 0:
            raise SystemExit("repro trace-lint failed on the smoke "
                             f"trace:\n{lint.stdout}\n{lint.stderr}")
        print(f"  traced run: {len(events)} schema-v{SCHEMA_VERSION} "
              f"events, trace-lint clean")


def step_lint() -> bool:
    if shutil.which("ruff") is None:
        return False
    proc = run(["ruff", "check", "src", "tests", "tools"],
               capture_output=True, text=True)
    if proc.returncode != 0:
        raise SystemExit(f"ruff check failed:\n{proc.stdout}")
    return True


def step_perf_smoke() -> None:
    from repro.harness.perf import measure_exhibit

    exhibit = measure_exhibit("baseline", scale=0.05, rounds=1)
    rate = exhibit["refs_per_sec"]
    # Deliberately far below the perf harness's floor: this is a
    # did-it-fall-off-a-cliff check, not a benchmark.
    if rate < 20_000:
        raise SystemExit(
            f"perf smoke: {rate:,.0f} refs/s is catastrophically slow; "
            f"run python tools/bench.py to investigate")
    print(f"  perf smoke: {rate:,.0f} refs/s "
          f"({exhibit['refs']} refs in {exhibit['wall_seconds_best']:.2f}s)")


def step_tier_matrix() -> None:
    from repro.harness.runner import build_machine, tiny_revive_overrides
    from repro.machine.config import MachineConfig
    from repro.workloads.registry import get_workload

    fingerprints = {}
    for tier in ("reference", "scalar", "columnar"):
        machine = build_machine("cp_parity", MachineConfig.tiny(4),
                                50_000, **tiny_revive_overrides(4))
        machine.attach_workload(get_workload("lu", scale=0.02,
                                             n_procs=4))
        for proc in machine.processors:
            proc.fastpath = tier != "reference"
            proc.columnar = tier == "columnar"
        machine.run()
        fingerprints[tier] = (
            machine.simulator.now,
            machine.total_mem_refs(),
            [p.time for p in machine.processors],
            [(n.hierarchy.l1.hits, n.hierarchy.l1.misses,
              n.hierarchy.l2.hits, n.hierarchy.l2.misses)
             for n in machine.nodes],
            [dict(n.memory.lines()) for n in machine.nodes],
        )
    reference = fingerprints["reference"]
    for tier in ("scalar", "columnar"):
        if fingerprints[tier] != reference:
            raise SystemExit(
                f"tier matrix: the {tier} tier diverged from the "
                f"reference loop on lu/cp_parity -- run "
                f"pytest tests/test_columnar.py to localize")
    print("  tier matrix: reference == scalar == columnar "
          "(lu/cp_parity, "
          f"{fingerprints['reference'][1]:,} refs)")


def step_profile() -> None:
    with tempfile.TemporaryDirectory() as tmp:
        trace_path = os.path.join(tmp, "profile.jsonl")
        proc = run([sys.executable, "-m", "repro", "profile", "lu",
                    "--nodes", "4", "--scale", "0.05",
                    "--interval-us", "50", "--min-coverage", "0.5",
                    "--trace", trace_path],
                   capture_output=True, text=True, timeout=180)
        if proc.returncode != 0 or "attribution:" not in proc.stdout:
            raise SystemExit("repro profile failed (or attribution fell "
                             "below the smoke floor):\n"
                             f"{proc.stdout}\n{proc.stderr}")
        lint = run([sys.executable, "-m", "repro", "trace-lint",
                    trace_path], capture_output=True, text=True)
        if lint.returncode != 0:
            raise SystemExit("repro trace-lint failed on the profile "
                             f"trace:\n{lint.stdout}\n{lint.stderr}")
        attribution = next(line for line in proc.stdout.splitlines()
                           if line.startswith("attribution:"))
        print(f"  {attribution}; prof trace lint clean")


def _spawn_server(cache_dir: str) -> subprocess.Popen:
    return subprocess.Popen(
        [sys.executable, "-m", "repro", "serve",
         "--port", "0", "--workers", "1", "--cache-dir", cache_dir],
        cwd=REPO_ROOT, env=_env(),
        stdout=subprocess.PIPE, stderr=subprocess.PIPE,
        text=True, start_new_session=True)


def _server_port(server: subprocess.Popen) -> str:
    banner = server.stdout.readline().strip()
    # "serving on HOST:PORT (cache: ..., workers: N)"
    if "serving on" not in banner:
        raise SystemExit(f"repro serve printed no banner: {banner!r}")
    return banner.split()[2].rsplit(":", 1)[1]


def step_serve_round_trip() -> None:
    with tempfile.TemporaryDirectory() as tmp:
        server = _spawn_server(os.path.join(tmp, "cache"))
        try:
            port = _server_port(server)
            submit = [sys.executable, "-m", "repro", "submit", "lu",
                      "--nodes", "4", "--scale", "0.05",
                      "--interval-us", "50", "--port", port]
            first = run(submit, capture_output=True, text=True,
                        timeout=180)
            if first.returncode != 0 or "cache miss" not in first.stdout:
                raise SystemExit("first submit should simulate (cache "
                                 f"miss):\n{first.stdout}\n{first.stderr}")
            second = run(submit, capture_output=True, text=True,
                         timeout=60)
            if second.returncode != 0 or "cache hit" not in second.stdout:
                raise SystemExit("second submit should be served from "
                                 "the cache (cache hit):\n"
                                 f"{second.stdout}\n{second.stderr}")
            print(f"  serve round-trip on port {port}: "
                  f"miss -> simulate -> hit")
        finally:
            server.terminate()
            try:
                server.wait(timeout=10)
            except subprocess.TimeoutExpired:
                server.kill()


def step_serve_telemetry() -> None:
    with tempfile.TemporaryDirectory() as tmp:
        server = _spawn_server(os.path.join(tmp, "cache"))
        try:
            port = _server_port(server)
            stats = [sys.executable, "-m", "repro", "stats",
                     "--port", port]
            first = run(stats, capture_output=True, text=True,
                        timeout=60)
            if first.returncode != 0 or "beat 1:" not in first.stdout:
                raise SystemExit("repro stats streamed no heartbeat:\n"
                                 f"{first.stdout}\n{first.stderr}")
            prom = run(stats + ["--prometheus"], capture_output=True,
                       text=True, timeout=60)
            # The stats request above bumped its own request counter,
            # so the scrape must expose it in Prometheus text form.
            wanted = "# TYPE repro_svc_requests_stats counter"
            if prom.returncode != 0 or wanted not in prom.stdout:
                raise SystemExit("GET /metrics did not expose the "
                                 "request counters:\n"
                                 f"{prom.stdout}\n{prom.stderr}")
            print(f"  serve telemetry on port {port}: heartbeat + "
                  f"snapshot streamed, /metrics scrape clean")
        finally:
            server.terminate()
            try:
                server.wait(timeout=10)
            except subprocess.TimeoutExpired:
                server.kill()


def step_determinism_diff() -> None:
    with tempfile.TemporaryDirectory() as tmp:
        digest_a = os.path.join(tmp, "a.json")
        digest_b = os.path.join(tmp, "b.json")
        argv = [sys.executable, "-m", "repro", "run", "lu",
                "--nodes", "4", "--scale", "0.05", "--interval-us", "50"]
        clean = run(argv + ["--digest", digest_a],
                    capture_output=True, text=True, timeout=180)
        if clean.returncode != 0:
            raise SystemExit("repro run --digest failed:\n"
                             f"{clean.stdout}\n{clean.stderr}")
        env = _env()
        env["REPRO_PERTURB_STORE"] = "100"
        perturbed = subprocess.run(
            argv + ["--digest", digest_b], cwd=REPO_ROOT, env=env,
            capture_output=True, text=True, timeout=180)
        if perturbed.returncode != 0:
            raise SystemExit("perturbed repro run --digest failed:\n"
                             f"{perturbed.stdout}\n{perturbed.stderr}")
        same = run([sys.executable, "-m", "repro", "diff",
                    digest_a, digest_a], capture_output=True, text=True)
        if same.returncode != 0 or "identical" not in same.stdout:
            raise SystemExit("repro diff of a run against itself should "
                             f"be identical:\n{same.stdout}\n{same.stderr}")
        diff = run([sys.executable, "-m", "repro", "diff",
                    digest_a, digest_b, "--bisect"],
                   capture_output=True, text=True, timeout=180)
        # The perturbed run flips store #100, so the bisection must
        # exit 1, name the divergent window, and localise an event
        # whose store range covers the injected counter.
        if diff.returncode != 1:
            raise SystemExit("repro diff should exit 1 on divergent "
                             f"runs:\n{diff.stdout}\n{diff.stderr}")
        lines = diff.stdout.splitlines()
        window_line = next((ln for ln in lines
                            if ln.startswith("divergent: first at window")),
                           None)
        event_line = next((ln for ln in lines
                           if ln.startswith("bisect: first divergent "
                                            "event")), None)
        if window_line is None or event_line is None:
            raise SystemExit("repro diff --bisect did not localise the "
                             f"divergence:\n{diff.stdout}\n{diff.stderr}")
        lo, hi = (int(part.strip("(]"))
                  for part in event_line.rsplit("stores ", 1)[1]
                  .split(", "))
        if not lo < 100 <= hi:
            raise SystemExit("bisection store range should cover the "
                             f"injected store #100: {event_line}")
        print(f"  determinism diff: {window_line.split(': ', 1)[1]}; "
              f"{event_line.split(': ', 1)[1]}")


def step_campaign_round_trip() -> None:
    with tempfile.TemporaryDirectory() as tmp:
        trace_path = os.path.join(tmp, "campaign.jsonl")
        argv = [sys.executable, "-m", "repro", "campaign", "fft",
                "--nodes", "4", "--scale", "0.05", "--interval-us", "50",
                "--warm", "2", "--lost-nodes", "1",
                "--detect-fractions", "0.2,0.8", "--serial",
                "--cache-dir", os.path.join(tmp, "store")]
        first = run(argv + ["--trace", trace_path],
                    capture_output=True, text=True, timeout=180)
        if first.returncode != 0 or "(captured)" not in first.stdout:
            raise SystemExit("first campaign should capture the warm "
                             f"image:\n{first.stdout}\n{first.stderr}")
        second = run(argv, capture_output=True, text=True, timeout=180)
        if second.returncode != 0 or "(cached)" not in second.stdout:
            raise SystemExit("second campaign should fork from the "
                             "cached warm image:\n"
                             f"{second.stdout}\n{second.stderr}")

        def outcomes(stdout):
            return [line for line in stdout.splitlines()
                    if line and line.lstrip()[0].isdigit()]

        if outcomes(first.stdout) != outcomes(second.stdout):
            raise SystemExit("forked campaign outcomes diverged from "
                             f"the capturing run:\n{first.stdout}\n"
                             f"{second.stdout}")
        lint = run([sys.executable, "-m", "repro", "trace-lint",
                    trace_path], capture_output=True, text=True)
        if lint.returncode != 0:
            raise SystemExit("repro trace-lint failed on the campaign "
                             f"trace:\n{lint.stdout}\n{lint.stderr}")
        print("  campaign round-trip: capture -> fork (cached), "
              "identical outcomes, trace-lint clean")


def main() -> int:
    sys.path.insert(0, os.path.join(REPO_ROOT, "src"))
    print("[1/10] repro --help")
    step_cli_help()
    print("[2/10] traced node-loss recovery (repro trace lu)")
    step_traced_run()
    print("[3/10] ruff check")
    if step_lint():
        print("  lint clean")
    else:
        print("  ruff not installed -- skipped (optional dev dependency)")
    print("[4/10] perf smoke")
    step_perf_smoke()
    print("[5/10] execution-tier matrix (reference/scalar/columnar)")
    step_tier_matrix()
    print("[6/10] host-time attribution (repro profile lu)")
    step_profile()
    print("[7/10] repro serve round-trip (cache miss -> hit)")
    step_serve_round_trip()
    print("[8/10] repro serve telemetry (stats + GET /metrics)")
    step_serve_telemetry()
    print("[9/10] repro campaign round-trip (capture -> fork)")
    step_campaign_round_trip()
    print("[10/10] determinism diff (repro run --digest + repro diff)")
    step_determinism_diff()
    print("smoke: OK")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
