#!/usr/bin/env python
"""One-command smoke test: CLI health + a tiny traced run + lint.

Run from the repository root::

    python tools/smoke.py

Steps (documented in docs/OBSERVABILITY.md):

1. ``python -m repro --help`` exits 0.
2. ``python -m repro trace lu`` on a tiny 4-node machine writes a
   JSONL trace whose recomputed recovery breakdown matches the live
   ``RecoveryResult`` (the command itself verifies this and exits
   non-zero on mismatch).
3. The trace passes ``python -m repro trace-lint`` — the full schema
   validation (envelope, categories, names, required fields), a strict
   superset of the quick envelope check also performed here.
4. ``ruff check`` — only when the ruff binary is installed (it is an
   optional dev dependency; the smoke test must not require network
   installs), otherwise the step is reported as skipped.
5. Perf smoke: one quick throughput measurement through
   ``repro.harness.perf`` must clear a very soft floor (a fraction of
   the hard perf-harness floor; see docs/PERFORMANCE.md).  Catches
   "the simulator got 10x slower" mistakes without the full
   ``tools/bench.py`` run.

Exits 0 when every executed step passes.
"""

from __future__ import annotations

import json
import os
import shutil
import subprocess
import sys
import tempfile

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
ENVELOPE_KEYS = {"v", "seq", "ts", "cat", "name"}


def run(argv, **kwargs):
    env = dict(os.environ)
    env["PYTHONPATH"] = os.pathsep.join(
        p for p in (os.path.join(REPO_ROOT, "src"),
                    env.get("PYTHONPATH")) if p)
    return subprocess.run(argv, cwd=REPO_ROOT, env=env, **kwargs)


def step_cli_help() -> None:
    proc = run([sys.executable, "-m", "repro", "--help"],
               capture_output=True, text=True)
    if proc.returncode != 0:
        raise SystemExit(f"repro --help failed:\n{proc.stderr}")


def step_traced_run() -> None:
    from repro.obs import SCHEMA_VERSION, read_trace

    with tempfile.TemporaryDirectory() as tmp:
        trace_path = os.path.join(tmp, "smoke.jsonl")
        proc = run([sys.executable, "-m", "repro", "trace", "lu",
                    "--out", trace_path, "--profile"],
                   capture_output=True, text=True)
        if proc.returncode != 0:
            raise SystemExit("repro trace failed:\n"
                             f"{proc.stdout}\n{proc.stderr}")
        events = read_trace(trace_path)
        if not events:
            raise SystemExit("trace is empty")
        for event in events:
            missing = ENVELOPE_KEYS - event.keys()
            if missing:
                raise SystemExit(
                    f"event missing envelope keys {missing}: "
                    f"{json.dumps(event)}")
            if event["v"] != SCHEMA_VERSION:
                raise SystemExit(f"unexpected schema version: {event}")
        lint = run([sys.executable, "-m", "repro", "trace-lint",
                    trace_path], capture_output=True, text=True)
        if lint.returncode != 0:
            raise SystemExit("repro trace-lint failed on the smoke "
                             f"trace:\n{lint.stdout}\n{lint.stderr}")
        print(f"  traced run: {len(events)} schema-v{SCHEMA_VERSION} "
              f"events, trace-lint clean")


def step_lint() -> bool:
    if shutil.which("ruff") is None:
        return False
    proc = run(["ruff", "check", "src", "tests", "tools"],
               capture_output=True, text=True)
    if proc.returncode != 0:
        raise SystemExit(f"ruff check failed:\n{proc.stdout}")
    return True


def step_perf_smoke() -> None:
    from repro.harness.perf import measure_exhibit

    exhibit = measure_exhibit("baseline", scale=0.05, rounds=1)
    rate = exhibit["refs_per_sec"]
    # Deliberately far below the perf harness's floor: this is a
    # did-it-fall-off-a-cliff check, not a benchmark.
    if rate < 20_000:
        raise SystemExit(
            f"perf smoke: {rate:,.0f} refs/s is catastrophically slow; "
            f"run python tools/bench.py to investigate")
    print(f"  perf smoke: {rate:,.0f} refs/s "
          f"({exhibit['refs']} refs in {exhibit['wall_seconds_best']:.2f}s)")


def main() -> int:
    sys.path.insert(0, os.path.join(REPO_ROOT, "src"))
    print("[1/4] repro --help")
    step_cli_help()
    print("[2/4] traced node-loss recovery (repro trace lu)")
    step_traced_run()
    print("[3/4] ruff check")
    if step_lint():
        print("  lint clean")
    else:
        print("  ruff not installed -- skipped (optional dev dependency)")
    print("[4/4] perf smoke")
    step_perf_smoke()
    print("smoke: OK")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
