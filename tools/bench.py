#!/usr/bin/env python
"""Throughput harness entry point (docs/PERFORMANCE.md).

Run from the repository root::

    python tools/bench.py                 # full report, 3 rounds
    python tools/bench.py --quick         # 1 round, smaller runs
    python tools/bench.py --no-sweep      # skip the parallel-sweep part

Measures the standard exhibits (``repro.harness.perf``), prints the
human-readable summary, writes the machine-readable report to
``benchmarks/results/BENCH_throughput.json`` (override with ``--out``),
and exits non-zero when any exhibit falls below the hard regression
floor (``SOFT_THRESHOLD`` of the recorded baseline).  The same harness
runs under pytest as ``pytest benchmarks -m perf``.
"""

from __future__ import annotations

import argparse
import os
import sys

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
sys.path.insert(0, os.path.join(REPO_ROOT, "src"))

DEFAULT_OUT = os.path.join(REPO_ROOT, "benchmarks", "results",
                           "BENCH_throughput.json")


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="bench", description=__doc__.splitlines()[0])
    parser.add_argument("--rounds", type=int, default=3,
                        help="measurement rounds per exhibit (default 3)")
    parser.add_argument("--scale", type=float, default=0.25,
                        help="exhibit run-length multiplier (default 0.25)")
    parser.add_argument("--sweep-workers", type=int, default=4,
                        help="worker count for the sweep comparison")
    parser.add_argument("--no-sweep", action="store_true",
                        help="skip the serial-vs-parallel sweep timing")
    parser.add_argument("--no-cache-bench", action="store_true",
                        help="skip the result-store hit-path latency "
                             "measurement (and its gate)")
    parser.add_argument("--no-campaign-bench", action="store_true",
                        help="skip the fault-campaign fork-vs-cold "
                             "measurement (and its gate)")
    parser.add_argument("--no-columnar-bench", action="store_true",
                        help="skip the columnar-vs-scalar tier "
                             "comparison (and its gate)")
    parser.add_argument("--no-obs-bench", action="store_true",
                        help="skip the disabled-observability overhead "
                             "measurement (and its gate)")
    parser.add_argument("--no-digest-bench", action="store_true",
                        help="skip the determinism-digest overhead "
                             "measurement (and its gate)")
    parser.add_argument("--quick", action="store_true",
                        help="one round at scale 0.1 (smoke use)")
    parser.add_argument("--out", default=DEFAULT_OUT,
                        help=f"report path (default {DEFAULT_OUT})")
    args = parser.parse_args(argv)

    from repro.harness.perf import (
        format_report,
        hard_failures,
        throughput_report,
        write_report,
    )

    rounds = 1 if args.quick else args.rounds
    scale = 0.1 if args.quick else args.scale
    report = throughput_report(rounds=rounds, scale=scale,
                               sweep_workers=args.sweep_workers,
                               include_sweep=not args.no_sweep,
                               sweep_scale=min(0.1, scale),
                               include_cache=not args.no_cache_bench,
                               include_campaign=not args.no_campaign_bench,
                               include_columnar=not args.no_columnar_bench,
                               include_obs=not args.no_obs_bench,
                               include_digest=not args.no_digest_bench)
    os.makedirs(os.path.dirname(args.out), exist_ok=True)
    write_report(report, args.out)
    print(format_report(report))
    print(f"report: {args.out}")

    failures = hard_failures(report)
    if failures:
        for failure in failures:
            print(f"FAIL: {failure}", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
