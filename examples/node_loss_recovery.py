#!/usr/bin/env python3
"""Survive the permanent loss of an entire node (Figure 7's scenario).

Runs the LU analog under ReVive, lets two global checkpoints commit,
then — at the worst possible moment, 0.8 of an interval after the
second commit — permanently destroys node 3: its memory (including its
share of the logs and parity), caches, and processor are gone.

Recovery then runs all four phases:
  1. hardware recovery (fixed cost),
  2. rebuild the lost node's log region from distributed parity,
  3. roll back all memory to checkpoint 1 using the logs (rebuilding
     lost data pages on demand), and
  4. background repair of every remaining damaged parity group.

The example verifies the result bit-for-bit against the golden
checkpoint snapshot before printing the Figure-7-style timeline.

Run:  python examples/node_loss_recovery.py
"""

from repro.core.faults import NodeLossFault
from repro.core.recovery import RecoveryManager
from repro.harness.reporting import format_table, timeline
from repro.harness.runner import DEFAULT_INTERVAL_NS, build_machine
from repro.workloads.registry import get_workload

LOST_NODE = 3


def main() -> None:
    machine = build_machine("cp_parity", debug_snapshots=True)
    machine.attach_workload(get_workload("lu"))

    print("Running until two checkpoints have committed...")
    horizon = 3 * DEFAULT_INTERVAL_NS
    while machine.checkpointing.checkpoints_committed < 2:
        machine.run(until=horizon)
        horizon += DEFAULT_INTERVAL_NS
    commit2 = machine.checkpointing.commit_times[2]
    detect = commit2 + int(0.8 * DEFAULT_INTERVAL_NS)
    machine.run(until=detect)

    print(f"Injecting permanent loss of node {LOST_NODE} "
          f"(memory, caches, processor)...")
    NodeLossFault(LOST_NODE).apply(machine)

    print("Recovering...")
    result = RecoveryManager(machine).recover(detect_time=detect,
                                              lost_node=LOST_NODE,
                                              target_epoch=1)

    mismatches = machine.verify_against_snapshot(result.target_epoch)
    broken = machine.revive.parity.check_all_parity()
    verdict = ("memory matches checkpoint bit-for-bit, parity consistent"
               if not mismatches and not broken
               else f"FAILED: {len(mismatches)} mismatches, "
                    f"{len(broken)} broken stripes")

    print()
    print(format_table(
        ["Phase", "Duration (us)", "Work"],
        [
            ["lost work (to checkpoint 1)",
             f"{result.lost_work_ns / 1e3:.0f}", ""],
            ["1: hardware recovery", f"{result.phase1_ns / 1e3:.0f}",
             "diagnosis, reset (fixed)"],
            ["2: rebuild lost log", f"{result.phase2_ns / 1e3:.0f}",
             f"{result.log_lines_rebuilt} lines XOR-rebuilt"],
            ["3: rollback", f"{result.phase3_ns / 1e3:.0f}",
             f"{result.entries_undone} log entries undone, "
             f"{result.pages_rebuilt_during_rollback} pages on demand"],
            ["4: background repair",
             f"{result.phase4_background_ns / 1e3:.0f}",
             f"{result.pages_rebuilt_background} pages "
             f"(machine available)"],
        ],
        title=f"Recovery from losing node {LOST_NODE}: {verdict}"))
    print()
    print("Figure-7-style timeline (us):")
    print(timeline([
        ("lost work", result.lost_work_ns / 1e3),
        ("hw recovery", result.phase1_ns / 1e3),
        ("log rebuild", result.phase2_ns / 1e3),
        ("rollback", result.phase3_ns / 1e3),
    ]))
    print()
    unavailable_ms = result.unavailable_ns / 1e6
    print(f"Unavailable time (lost work + phases 1-3): "
          f"{unavailable_ms:.1f} ms simulated "
          f"(dominated by the fixed 50 ms hardware-recovery cost).")


if __name__ == "__main__":
    main()
