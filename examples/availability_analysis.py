#!/usr/bin/env python3
"""From measured recovery times to availability (Section 3.3.2).

Runs the worst-case node-loss recovery experiment on a few
applications, extrapolates the measured phases to the paper's real
100 ms checkpoint interval, and computes availability across the
paper's expected error-frequency range (once a day to once a month).

Run:  python examples/availability_analysis.py
"""

from repro.core.availability import NS_PER_DAY, availability, nines
from repro.harness.experiments import fig12_recovery
from repro.harness.reporting import format_table

APPS = ("lu", "ocean", "radix")


def main() -> None:
    print(f"Measuring worst-case node-loss recovery on {', '.join(APPS)}"
          f" (error just before checkpoint 2, detected 0.8 intervals "
          f"later)...")
    experiments = fig12_recovery(apps=APPS, lost_node=3)

    rows = []
    worst_ms = 0.0
    for e in experiments:
        unavailable_ms = e.unavailable_ms_scaled
        worst_ms = max(worst_ms, unavailable_ms)
        rows.append([e.app,
                     f"{e.result.entries_undone}",
                     f"{e.result.revive_recovery_ns / 1e3:.0f}us",
                     f"{unavailable_ms:.0f}ms"])
    print()
    print(format_table(
        ["App", "Entries undone", "ReVive recovery (measured)",
         "Unavailable @100ms interval (scaled)"],
        rows, title="Worst-case node-loss recovery"))

    print()
    freq_rows = []
    for label, days in [("1/day", 1), ("1/week", 7), ("1/month", 30)]:
        a = availability(days * NS_PER_DAY, worst_ms * 1e6)
        freq_rows.append([label, f"{100 * a:.6f}%", f"{nines(a):.1f}"])
    print(format_table(
        ["Error frequency", "Availability", "Nines"],
        freq_rows,
        title=f"Availability with {worst_ms:.0f}ms worst-case downtime "
              f"(paper: >99.999% even at one error per day)"))


if __name__ == "__main__":
    main()
