#!/usr/bin/env python3
"""Hybrid protection: mirror the hot pages, parity-protect the rest.

Section 6.1 of the paper proposes, and Section 8 lists as ongoing
work, a scheme where "a small part of the memory can be protected by
mirroring, while the rest is protected by parity" — buying mirroring's
cheap maintenance for the frequently-written pages at a fraction of its
50% memory cost.  This repository implements that extension
(`HybridGeometry`); the example sweeps the mirrored fraction and also
demonstrates that node-loss recovery remains bit-exact under the mixed
geometry.

Run:  python examples/hybrid_protection.py [app]
"""

import sys

from repro.core.faults import NodeLossFault
from repro.core.recovery import RecoveryManager
from repro.harness.reporting import format_table
from repro.harness.runner import (
    DEFAULT_INTERVAL_NS,
    build_machine,
    run_app,
)
from repro.workloads.registry import get_workload


def sweep(app: str) -> None:
    base = run_app(app, "baseline")
    rows = []
    for label, variant, overrides in [
        ("pure 7+1 parity", "cp_parity", {}),
        ("hybrid, 10% mirrored", "cp_parity", {"mirrored_fraction": 0.10}),
        ("hybrid, 25% mirrored", "cp_parity", {"mirrored_fraction": 0.25}),
        ("hybrid, 50% mirrored", "cp_parity", {"mirrored_fraction": 0.50}),
        ("pure mirroring", "cp_mirroring", {}),
    ]:
        result = run_app(app, variant, **overrides)
        memory = build_machine(variant, **overrides) \
            .geometry.parity_fraction()
        rows.append([label, f"{100 * result.overhead_vs(base):+.1f}%",
                     f"{100 * memory:.1f}%"])
        print(f"  {label:<22} overhead={rows[-1][1]:>7}  "
              f"memory={rows[-1][2]:>6}")
    print()
    print(format_table(
        ["Scheme", "Time overhead", "Memory overhead"], rows,
        title=f"{app}: the hybrid trade-off space"))


def verify_recovery(app: str) -> None:
    print()
    print("Verifying node-loss recovery under the hybrid geometry...")
    machine = build_machine("cp_parity", mirrored_fraction=0.25,
                            debug_snapshots=True)
    machine.attach_workload(get_workload(app))
    horizon = 3 * DEFAULT_INTERVAL_NS
    while machine.checkpointing.checkpoints_committed < 2:
        machine.run(until=horizon)
        horizon += DEFAULT_INTERVAL_NS
    detect = (machine.checkpointing.commit_times[2]
              + int(0.8 * DEFAULT_INTERVAL_NS))
    machine.run(until=detect)
    NodeLossFault(5).apply(machine)
    result = RecoveryManager(machine).recover(detect_time=detect,
                                              lost_node=5, target_epoch=1)
    ok = (machine.verify_against_snapshot(result.target_epoch) == []
          and machine.revive.parity.check_all_parity() == [])
    print(f"  rolled back {result.entries_undone} entries, rebuilt "
          f"{result.log_lines_rebuilt} log lines and "
          f"{result.pages_rebuilt_background} pages: "
          f"{'bit-exact' if ok else 'MISMATCH'}")


def main() -> None:
    app = sys.argv[1] if len(sys.argv) > 1 else "fft"
    print(f"Sweeping mirrored fraction on {app!r}...")
    sweep(app)
    verify_recovery(app)


if __name__ == "__main__":
    main()
