#!/usr/bin/env python3
"""ReVive I/O: the output-commit problem, solved with parity-protected
buffers (the extension Section 8 sketches).

A rollback must never un-happen something the outside world already
saw.  This example runs a workload that "sends network packets" (one
output record per phase), shows the packets being held in each node's
parity-protected I/O buffer until a global checkpoint commits, then
injects a node loss and demonstrates:

* packets released before the recovery target stay released (external
  history is untouched), and
* packets buffered after it are silently discarded along with the
  rolled-back computation that produced them.

Run:  python examples/io_output_commit.py
"""

from repro.core.faults import NodeLossFault
from repro.core.recovery import RecoveryManager
from repro.harness.runner import DEFAULT_INTERVAL_NS, build_machine
from repro.workloads.registry import get_workload


def main() -> None:
    machine = build_machine("cp_parity", io_buffer_pages=2,
                            debug_snapshots=True)
    machine.attach_workload(get_workload("lu"))
    io = machine.io_manager

    print("Running with one outbound packet per node per interval...")
    packet = 0
    horizon = DEFAULT_INTERVAL_NS
    while machine.checkpointing.checkpoints_committed < 2:
        machine.run(until=horizon)
        for node in range(4):
            packet += 1
            io.write_output(node, port=80, payload=packet,
                            at=machine.simulator.now)
        horizon += DEFAULT_INTERVAL_NS
    released_count = len(io.released)
    print(f"  after 2 commits: {released_count} packets released, "
          f"{len(io.pending_outputs())} still buffered")

    detect = (machine.checkpointing.commit_times[2]
              + int(0.8 * DEFAULT_INTERVAL_NS))
    machine.run(until=detect)
    for node in range(4):
        packet += 1
        io.write_output(node, port=80, payload=packet, at=detect)
    pending = len(io.pending_outputs())
    print(f"  at error time: {pending} unreleased packets in the buffers")

    print("Losing node 3; recovering to checkpoint 1...")
    NodeLossFault(3).apply(machine)
    result = RecoveryManager(machine).recover(detect_time=detect,
                                              lost_node=3, target_epoch=1)
    ok = machine.verify_against_snapshot(result.target_epoch) == []
    print(f"  memory {'bit-exact' if ok else 'MISMATCH'} after rollback")
    print(f"  released packets preserved: {len(io.released)} "
          f"(= {released_count} from before the error)")
    print(f"  unreleased packets discarded with the undone work: "
          f"{pending} -> {len(io.pending_outputs())}")
    assert len(io.released) == released_count
    assert io.pending_outputs() == []


if __name__ == "__main__":
    main()
