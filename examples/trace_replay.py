#!/usr/bin/env python3
"""Record a workload's reference streams and replay them bit-for-bit.

Useful for archiving the exact streams behind a measurement, diffing
generator versions, or driving the simulator with externally-produced
traces.  The example records the LU analog, replays it on a fresh
machine, and shows the two runs are identical.

Run:  python examples/trace_replay.py [app] [trace.npz]
"""

import os
import sys
import tempfile

from repro.harness.runner import build_machine, collect_result
from repro.workloads.registry import get_workload
from repro.workloads.tracefile import TraceWorkload, record_trace


def main() -> None:
    app = sys.argv[1] if len(sys.argv) > 1 else "lu"
    path = sys.argv[2] if len(sys.argv) > 2 else os.path.join(
        tempfile.gettempdir(), f"{app}.npz")

    workload = get_workload(app, scale=0.3)
    stats = record_trace(workload, path)
    size_kb = os.path.getsize(path) / 1024
    print(f"Recorded {stats['total_refs']} references from "
          f"{stats['n_procs']} processors to {path} ({size_kb:.0f} KB).")

    def run(w):
        machine = build_machine("cp_parity")
        machine.attach_workload(w)
        machine.run()
        return collect_result(machine, app, "cp_parity")

    print("Running the generator-driven machine...")
    original = run(get_workload(app, scale=0.3))
    print("Running the trace-driven machine...")
    replayed = run(TraceWorkload(path))

    same_time = original.execution_time_ns == replayed.execution_time_ns
    same_traffic = original.memory_traffic == replayed.memory_traffic
    print(f"execution time: {original.execution_time_ns / 1e3:.1f}us vs "
          f"{replayed.execution_time_ns / 1e3:.1f}us "
          f"({'identical' if same_time else 'DIFFERENT'})")
    print(f"memory traffic identical: {same_traffic}")
    if not (same_time and same_traffic):
        sys.exit(1)


if __name__ == "__main__":
    main()
