#!/usr/bin/env python3
"""Quickstart: measure ReVive's error-free overhead on one application.

Builds the paper's 16-node CC-NUMA machine twice — once bare, once with
ReVive (7+1 distributed parity, periodic global checkpoints) — runs the
Ocean analog on both, and reports the slowdown and where the extra
traffic went.

Run:  python examples/quickstart.py [app]
"""

import sys

from repro.harness.reporting import format_table
from repro.harness.runner import run_app
from repro.sim.stats import TRAFFIC_CATEGORIES


def main() -> None:
    app = sys.argv[1] if len(sys.argv) > 1 else "ocean"
    print(f"Running {app!r} on the baseline machine...")
    baseline = run_app(app, "baseline")
    print(f"Running {app!r} with ReVive (Cp, 7+1 parity)...")
    revive = run_app(app, "cp_parity")

    overhead = revive.overhead_vs(baseline)
    print()
    print(format_table(
        ["Metric", "Baseline", "ReVive"],
        [
            ["execution time (us)",
             f"{baseline.execution_time_ns / 1e3:.1f}",
             f"{revive.execution_time_ns / 1e3:.1f}"],
            ["L2 miss rate",
             f"{100 * baseline.l2_miss_rate:.2f}%",
             f"{100 * revive.l2_miss_rate:.2f}%"],
            ["checkpoints committed", baseline.checkpoints,
             revive.checkpoints],
            ["max log footprint (KB)", 0,
             f"{revive.max_log_bytes / 1024:.0f}"],
        ],
        title=f"{app}: error-free execution "
              f"(ReVive overhead {100 * overhead:+.1f}%)"))

    print()
    print(format_table(
        ["Traffic class"] + list(TRAFFIC_CATEGORIES),
        [
            ["network (MB)"] + [f"{revive.network_traffic[c] / 1e6:.2f}"
                                for c in TRAFFIC_CATEGORIES],
            ["memory (MB)"] + [f"{revive.memory_traffic[c] / 1e6:.2f}"
                               for c in TRAFFIC_CATEGORIES],
        ],
        title="ReVive run, traffic by category "
              "(RD/RDX + ExeWB exist on the baseline too; "
              "CkpWB/LOG/PAR are ReVive's)"))


if __name__ == "__main__":
    main()
