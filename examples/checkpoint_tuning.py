#!/usr/bin/env python3
"""Explore ReVive's tuning space: interval and parity-vs-mirroring.

Section 6.1 discusses the trade-off: parity uses 12% of memory but
costs more maintenance traffic; mirroring is faster but takes 50% of
memory; longer checkpoint intervals amortise flush costs but grow the
log (and the lost work on an error).  This example sweeps both knobs on
one application and prints the resulting overhead / memory / log /
lost-work trade-off table.

Run:  python examples/checkpoint_tuning.py [app]
"""

import sys

from repro.harness.reporting import format_table
from repro.harness.runner import DEFAULT_INTERVAL_NS, run_app


def main() -> None:
    app = sys.argv[1] if len(sys.argv) > 1 else "fft"
    print(f"Sweeping checkpoint interval and redundancy scheme on "
          f"{app!r}...")
    baseline = run_app(app, "baseline")

    rows = []
    for label, variant in [("7+1 parity", "cp_parity"),
                           ("mirroring", "cp_mirroring")]:
        for interval in (DEFAULT_INTERVAL_NS // 2, DEFAULT_INTERVAL_NS,
                         2 * DEFAULT_INTERVAL_NS):
            result = run_app(app, variant, interval_ns=interval)
            machine_overhead = result.overhead_vs(baseline)
            memory_overhead = 0.125 if variant == "cp_parity" else 0.5
            worst_lost_work_us = (interval * 1.8) / 1e3
            rows.append([
                label,
                f"{interval / 1e3:.0f}us",
                f"{100 * machine_overhead:+.1f}%",
                f"{100 * memory_overhead:.0f}%",
                f"{result.max_log_bytes / 1024:.0f}KB",
                f"{worst_lost_work_us:.0f}us",
                result.checkpoints,
            ])
            print(f"  {label:<11} interval={interval / 1e3:>4.0f}us  "
                  f"overhead={100 * machine_overhead:+.1f}%")

    print()
    print(format_table(
        ["Scheme", "Interval", "Time overhead", "Memory overhead",
         "Max log", "Worst lost work", "Ckpts"],
        rows,
        title=f"{app}: ReVive tuning space (paper: parity 12% memory "
              f"vs mirroring 50%; longer intervals lower overhead but "
              f"lose more work per error)"))


if __name__ == "__main__":
    main()
